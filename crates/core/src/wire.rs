//! Request/reply framing and control-segment encoding.
//!
//! Each request carries (§4): an opcode, `start_sign` and `end_sign`
//! operands delimiting the record, the client id, the *sealed control
//! segment* (AES-128-GCM under `K_session`, authenticated together with the
//! opcode and client id as AAD), the payload CMAC, and the encrypted
//! payload. Only the control segment ever enters the enclave.
//!
//! GCM nonces are derived from the per-direction sequence numbers (`oid`
//! client→server, `reply_seq` server→client) with distinct direction tags,
//! so no (key, nonce) pair ever repeats within a session.

use precursor_crypto::keys::{Key256, Nonce12, Nonce8, Tag};

use crate::error::StoreError;

/// Start-of-record operand (§4).
pub const START_SIGN: u16 = 0x5A5A;
/// End-of-record operand (§4).
pub const END_SIGN: u16 = 0xA5A5;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Insert or update a key (Algorithm 1/2).
    Put = 1,
    /// Query a key.
    Get = 2,
    /// Remove a key.
    Delete = 3,
}

impl Opcode {
    fn from_u8(v: u8) -> Option<Opcode> {
        match v {
            1 => Some(Opcode::Put),
            2 => Some(Opcode::Get),
            3 => Some(Opcode::Delete),
            _ => None,
        }
    }
}

/// Reply status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success.
    Ok = 0,
    /// Key absent.
    NotFound = 1,
    /// Sequence-number check failed (Algorithm 2, line 5).
    Replay = 2,
    /// Other failure (malformed control, oversized item, …).
    Error = 3,
    /// The server is shedding load for this client (per-client memory quota
    /// or backpressure); retry after the control segment's `retry_after_ns`.
    Busy = 4,
    /// The key is not owned by this node: the request hit a stale location
    /// cache. The sealed control segment carries the authoritative owner
    /// hint in `retry_after_ns` (routing epoch in the high bits, owner node
    /// in the low 16); the hint is folded into the reply MAC chain, so a
    /// malicious host cannot forge a redirect to misroute clients.
    NotMine = 5,
}

impl Status {
    pub(crate) fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::NotFound),
            2 => Some(Status::Replay),
            3 => Some(Status::Error),
            4 => Some(Status::Busy),
            5 => Some(Status::NotMine),
            _ => None,
        }
    }
}

/// GCM nonce for a client→server control segment.
pub fn request_nonce(oid: u64) -> Nonce12 {
    let mut b = [0u8; 12];
    b[0] = 0x01;
    b[4..].copy_from_slice(&oid.to_be_bytes());
    Nonce12::from_bytes(b)
}

/// GCM nonce for a server→client control segment.
pub fn reply_nonce(reply_seq: u64) -> Nonce12 {
    let mut b = [0u8; 12];
    b[0] = 0x02;
    b[4..].copy_from_slice(&reply_seq.to_be_bytes());
    Nonce12::from_bytes(b)
}

/// AAD binding a request's sealed control to its clear header.
pub fn request_aad(opcode: Opcode, client_id: u32) -> [u8; 5] {
    let mut aad = [0u8; 5];
    aad[0] = opcode as u8;
    aad[1..].copy_from_slice(&client_id.to_le_bytes());
    aad
}

/// A parsed request frame (clear parts + opaque sealed control).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Operation requested.
    pub opcode: Opcode,
    /// Issuing client.
    pub client_id: u32,
    /// Fresh GCM IV for the control segment; travels in the clear as the
    /// paper notes ("a newly generated initialization vector is necessary",
    /// §3.7), since the server needs it before it can decrypt the control.
    pub iv: Nonce12,
    /// AES-GCM-sealed control segment (opaque outside the enclave).
    pub sealed_control: Vec<u8>,
    /// CMAC over the encrypted payload (zeroes for control-only requests).
    pub mac: Tag,
    /// Encrypted payload (empty for control-only requests).
    pub payload: Vec<u8>,
}

impl RequestFrame {
    /// Serializes the frame into ring-record bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(43 + self.sealed_control.len() + self.payload.len());
        out.push(self.opcode as u8);
        out.extend_from_slice(&START_SIGN.to_le_bytes());
        out.extend_from_slice(&self.client_id.to_le_bytes());
        out.extend_from_slice(self.iv.as_bytes());
        out.extend_from_slice(&(self.sealed_control.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.sealed_control);
        out.extend_from_slice(self.mac.as_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&END_SIGN.to_le_bytes());
        out
    }

    /// Parses a frame, validating signs, opcode and lengths.
    ///
    /// # Errors
    ///
    /// [`StoreError::MalformedFrame`] on any structural violation.
    pub fn decode(buf: &[u8]) -> Result<RequestFrame, StoreError> {
        let mut r = Reader::new(buf);
        let opcode = Opcode::from_u8(r.u8()?).ok_or(StoreError::MalformedFrame)?;
        if r.u16()? != START_SIGN {
            return Err(StoreError::MalformedFrame);
        }
        let client_id = r.u32()?;
        let iv = Nonce12::try_from(r.bytes(12)?).map_err(|_| StoreError::MalformedFrame)?;
        let control_len = r.u16()? as usize;
        let sealed_control = r.bytes(control_len)?.to_vec();
        let mac = Tag::try_from(r.bytes(16)?).map_err(|_| StoreError::MalformedFrame)?;
        let payload_len = r.u32()? as usize;
        let payload = r.bytes(payload_len)?.to_vec();
        if r.u16()? != END_SIGN || !r.is_empty() {
            return Err(StoreError::MalformedFrame);
        }
        Ok(RequestFrame {
            opcode,
            client_id,
            iv,
            sealed_control,
            mac,
            payload,
        })
    }
}

/// GCM nonce for a transport-encrypted *payload* in server-encryption mode
/// (distinct direction tag so it can never collide with control nonces).
pub fn payload_request_nonce(oid: u64) -> Nonce12 {
    let mut b = [0u8; 12];
    b[0] = 0x03;
    b[4..].copy_from_slice(&oid.to_be_bytes());
    Nonce12::from_bytes(b)
}

/// GCM nonce for a transport-encrypted payload in a server-encryption-mode
/// *reply*.
pub fn payload_reply_nonce(reply_seq: u64) -> Nonce12 {
    let mut b = [0u8; 12];
    b[0] = 0x04;
    b[4..].copy_from_slice(&reply_seq.to_be_bytes());
    Nonce12::from_bytes(b)
}

/// A parsed reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyFrame {
    /// Outcome of the operation.
    pub status: Status,
    /// Echo of the request opcode.
    pub opcode: Opcode,
    /// Server→client sequence number (selects the reply GCM nonce).
    pub reply_seq: u64,
    /// AES-GCM-sealed control reply.
    pub sealed_control: Vec<u8>,
    /// Stored encrypted payload, sent as-is from untrusted memory (get only).
    pub payload: Vec<u8>,
}

impl ReplyFrame {
    /// Serializes the reply into ring-record bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.sealed_control.len() + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Serializes the reply into a caller-provided buffer (appended), so a
    /// reply arena can reuse allocations across ops instead of allocating
    /// one fresh `Vec` per reply. Produces exactly the bytes of
    /// [`encode`](Self::encode).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(16 + self.sealed_control.len() + self.payload.len());
        out.push(self.status as u8);
        out.push(self.opcode as u8);
        out.extend_from_slice(&self.reply_seq.to_le_bytes());
        out.extend_from_slice(&(self.sealed_control.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.sealed_control);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Parses a reply frame.
    ///
    /// # Errors
    ///
    /// [`StoreError::MalformedFrame`] on any structural violation.
    pub fn decode(buf: &[u8]) -> Result<ReplyFrame, StoreError> {
        let mut r = Reader::new(buf);
        let status = Status::from_u8(r.u8()?).ok_or(StoreError::MalformedFrame)?;
        let opcode = Opcode::from_u8(r.u8()?).ok_or(StoreError::MalformedFrame)?;
        let reply_seq = r.u64()?;
        let control_len = r.u16()? as usize;
        let sealed_control = r.bytes(control_len)?.to_vec();
        let payload_len = r.u32()? as usize;
        let payload = r.bytes(payload_len)?.to_vec();
        if !r.is_empty() {
            return Err(StoreError::MalformedFrame);
        }
        Ok(ReplyFrame {
            status,
            opcode,
            reply_seq,
            sealed_control,
            payload,
        })
    }
}

/// Plaintext of a request control segment (decrypted only in the enclave).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestControl {
    /// Per-client operation sequence number.
    pub oid: u64,
    /// The key item.
    pub key: Vec<u8>,
    /// One-time payload key (put in client-encryption mode only).
    pub k_op: Option<Key256>,
    /// Salsa20 nonce for the payload (put in client-encryption mode only).
    pub payload_nonce: Option<Nonce8>,
}

impl RequestControl {
    /// Serializes the control plaintext.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(11 + self.key.len() + 40);
        out.extend_from_slice(&self.oid.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.key);
        match (&self.k_op, &self.payload_nonce) {
            (Some(k), Some(n)) => {
                out.push(1);
                out.extend_from_slice(k.as_bytes());
                out.extend_from_slice(n.as_bytes());
            }
            _ => out.push(0),
        }
        out
    }

    /// Parses a control plaintext.
    ///
    /// # Errors
    ///
    /// [`StoreError::MalformedFrame`] on any structural violation.
    pub fn decode(buf: &[u8]) -> Result<RequestControl, StoreError> {
        let mut r = Reader::new(buf);
        let oid = r.u64()?;
        let key_len = r.u16()? as usize;
        let key = r.bytes(key_len)?.to_vec();
        let (k_op, payload_nonce) = match r.u8()? {
            0 => (None, None),
            1 => {
                let k = Key256::try_from(r.bytes(32)?).map_err(|_| StoreError::MalformedFrame)?;
                let n = Nonce8::try_from(r.bytes(8)?).map_err(|_| StoreError::MalformedFrame)?;
                (Some(k), Some(n))
            }
            _ => return Err(StoreError::MalformedFrame),
        };
        if !r.is_empty() {
            return Err(StoreError::MalformedFrame);
        }
        Ok(RequestControl {
            oid,
            key,
            k_op,
            payload_nonce,
        })
    }

    /// Wire size of a control segment for a key of `key_len` bytes carrying
    /// a one-time key — the paper's "≈56 B" control-data estimate (§5.2).
    pub fn encoded_len(key_len: usize, with_key_material: bool) -> usize {
        8 + 2 + key_len + 1 + if with_key_material { 40 } else { 0 }
    }
}

/// Plaintext of a reply control segment.
///
/// Beyond the paper's fields (the `oid` echo and the key material of a
/// returned value), the control carries the Byzantine-detection state the
/// client verifies on every reply: the session's connection *epoch*, the
/// server's store-mutation sequence number and digest (rollback / fork
/// evidence), the reply MAC-chain tag, and a retry hint for
/// [`Status::Busy`] backpressure replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyControl {
    /// Echo of the request `oid` (lets the client match and order replies).
    pub oid: u64,
    /// One-time key of the returned value (get replies).
    pub k_op: Option<Key256>,
    /// Salsa20 nonce of the returned value (get replies).
    pub payload_nonce: Option<Nonce8>,
    /// Stored CMAC of the returned encrypted value (get replies).
    pub mac: Option<Tag>,
    /// Connection epoch of the issuing session (bumped on every reconnect).
    pub epoch: u32,
    /// Server-global store mutation sequence number at reply time. A client
    /// that ever sees this regress is talking to a rolled-back server.
    pub store_seq: u64,
    /// Running digest over all applied mutations up to `store_seq`. Two
    /// clients comparing equal `store_seq` with different digests have been
    /// shown *forked* views.
    pub store_digest: [u8; 16],
    /// Reply MAC-chain tag over this reply's canonical bytes (see
    /// [`chain_input`]); links the reply to every reply before it.
    pub chain: Tag,
    /// Suggested client back-off before retrying, in simulated nanoseconds
    /// (meaningful for [`Status::Busy`] replies; zero otherwise).
    pub retry_after_ns: u64,
}

impl ReplyControl {
    /// A control segment carrying only the `oid` echo; the server fills the
    /// epoch/chain/store fields when finalizing the reply.
    pub fn basic(oid: u64) -> ReplyControl {
        ReplyControl {
            oid,
            k_op: None,
            payload_nonce: None,
            mac: None,
            epoch: 0,
            store_seq: 0,
            store_digest: [0u8; 16],
            chain: Tag::default(),
            retry_after_ns: 0,
        }
    }

    /// Serializes the reply control plaintext.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + 56 + 52);
        out.extend_from_slice(&self.oid.to_le_bytes());
        match (&self.k_op, &self.payload_nonce, &self.mac) {
            (Some(k), Some(n), Some(m)) => {
                out.push(1);
                out.extend_from_slice(k.as_bytes());
                out.extend_from_slice(n.as_bytes());
                out.extend_from_slice(m.as_bytes());
            }
            _ => out.push(0),
        }
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.store_seq.to_le_bytes());
        out.extend_from_slice(&self.store_digest);
        out.extend_from_slice(self.chain.as_bytes());
        out.extend_from_slice(&self.retry_after_ns.to_le_bytes());
        out
    }

    /// Parses a reply control plaintext.
    ///
    /// # Errors
    ///
    /// [`StoreError::MalformedFrame`] on any structural violation.
    pub fn decode(buf: &[u8]) -> Result<ReplyControl, StoreError> {
        let mut r = Reader::new(buf);
        let oid = r.u64()?;
        let (k_op, payload_nonce, mac) = match r.u8()? {
            0 => (None, None, None),
            1 => {
                let k = Key256::try_from(r.bytes(32)?).map_err(|_| StoreError::MalformedFrame)?;
                let n = Nonce8::try_from(r.bytes(8)?).map_err(|_| StoreError::MalformedFrame)?;
                let m = Tag::try_from(r.bytes(16)?).map_err(|_| StoreError::MalformedFrame)?;
                (Some(k), Some(n), Some(m))
            }
            _ => return Err(StoreError::MalformedFrame),
        };
        let epoch = r.u32()?;
        let store_seq = r.u64()?;
        let store_digest: [u8; 16] = r
            .bytes(16)?
            .try_into()
            .map_err(|_| StoreError::MalformedFrame)?;
        let chain = Tag::try_from(r.bytes(16)?).map_err(|_| StoreError::MalformedFrame)?;
        let retry_after_ns = r.u64()?;
        if !r.is_empty() {
            return Err(StoreError::MalformedFrame);
        }
        Ok(ReplyControl {
            oid,
            k_op,
            payload_nonce,
            mac,
            epoch,
            store_seq,
            store_digest,
            chain,
            retry_after_ns,
        })
    }
}

/// Context string both endpoints seed the reply MAC chain with: binds the
/// session identity (client id) and the connection epoch, so chains from
/// different sessions or epochs start from unrelated states.
pub fn chain_context(client_id: u32, epoch: u32) -> Vec<u8> {
    let mut out = b"precursor-reply-chain:".to_vec();
    out.extend_from_slice(&client_id.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out
}

/// Canonical byte string a reply's MAC-chain tag is computed over: the
/// clear reply header (status, opcode, `reply_seq`) plus every
/// Byzantine-relevant control field *except* the chain tag itself. Both the
/// enclave and the client build this identically; any divergence breaks the
/// chain.
pub fn chain_input(
    status: Status,
    opcode: Opcode,
    reply_seq: u64,
    control: &ReplyControl,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + 8 + 8 + 4 + 8 + 16 + 8);
    out.push(status as u8);
    out.push(opcode as u8);
    out.extend_from_slice(&reply_seq.to_le_bytes());
    out.extend_from_slice(&control.oid.to_le_bytes());
    out.extend_from_slice(&control.epoch.to_le_bytes());
    out.extend_from_slice(&control.store_seq.to_le_bytes());
    out.extend_from_slice(&control.store_digest);
    out.extend_from_slice(&control.retry_after_ns.to_le_bytes());
    out
}

/// The trusted polling shard owning `key` when the server runs with
/// `shards` shards ([`Config::shards`](crate::Config)): the stable key hash
/// reduced by the high bits. Every layer — server routing, the bench
/// driver's poller pinning, and the test oracles — derives the same answer
/// from the key bytes alone.
pub fn shard_of_key(key: &[u8], shards: usize) -> usize {
    // `[u8]` and `Vec<u8>` hash identically, so this matches the sharded
    // table's own routing of its `Vec<u8>` keys.
    precursor_storage::robinhood::shard_of_hash(
        precursor_storage::robinhood::stable_key_hash(key),
        shards,
    )
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::MalformedFrame);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("len 2"),
        ))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("len 4"),
        ))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("len 8"),
        ))
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestFrame {
        RequestFrame {
            opcode: Opcode::Put,
            client_id: 7,
            iv: Nonce12::from_bytes([8; 12]),
            sealed_control: vec![1, 2, 3, 4, 5],
            mac: Tag::from_bytes([9; 16]),
            payload: vec![0xAA; 37],
        }
    }

    #[test]
    fn request_roundtrip() {
        let f = sample_request();
        assert_eq!(RequestFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn request_roundtrip_empty_payload() {
        let f = RequestFrame {
            opcode: Opcode::Get,
            client_id: 0,
            iv: Nonce12::from_bytes([0; 12]),
            sealed_control: vec![],
            mac: Tag::default(),
            payload: vec![],
        };
        assert_eq!(RequestFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn request_rejects_bad_signs_opcode_and_trailing() {
        let f = sample_request();
        let good = f.encode();

        let mut bad_op = good.clone();
        bad_op[0] = 99;
        assert_eq!(
            RequestFrame::decode(&bad_op),
            Err(StoreError::MalformedFrame)
        );

        let mut bad_start = good.clone();
        bad_start[1] ^= 0xFF;
        assert_eq!(
            RequestFrame::decode(&bad_start),
            Err(StoreError::MalformedFrame)
        );

        let mut bad_end = good.clone();
        let n = bad_end.len();
        bad_end[n - 1] ^= 0xFF;
        assert_eq!(
            RequestFrame::decode(&bad_end),
            Err(StoreError::MalformedFrame)
        );

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            RequestFrame::decode(&trailing),
            Err(StoreError::MalformedFrame)
        );

        assert_eq!(
            RequestFrame::decode(&good[..10]),
            Err(StoreError::MalformedFrame)
        );
    }

    #[test]
    fn reply_roundtrip() {
        let f = ReplyFrame {
            status: Status::Ok,
            opcode: Opcode::Get,
            reply_seq: 12345,
            sealed_control: vec![7; 60],
            payload: vec![1; 100],
        };
        assert_eq!(ReplyFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn reply_rejects_bad_status() {
        let f = ReplyFrame {
            status: Status::NotFound,
            opcode: Opcode::Get,
            reply_seq: 1,
            sealed_control: vec![],
            payload: vec![],
        };
        let mut bytes = f.encode();
        bytes[0] = 42;
        assert_eq!(ReplyFrame::decode(&bytes), Err(StoreError::MalformedFrame));
    }

    #[test]
    fn request_control_roundtrip_with_and_without_key_material() {
        let with = RequestControl {
            oid: 55,
            key: b"user-key".to_vec(),
            k_op: Some(Key256::from_bytes([3; 32])),
            payload_nonce: Some(Nonce8::from_bytes([4; 8])),
        };
        assert_eq!(RequestControl::decode(&with.encode()).unwrap(), with);

        let without = RequestControl {
            oid: 56,
            key: b"k".to_vec(),
            k_op: None,
            payload_nonce: None,
        };
        assert_eq!(RequestControl::decode(&without.encode()).unwrap(), without);
    }

    #[test]
    fn reply_control_roundtrip() {
        let c = ReplyControl {
            k_op: Some(Key256::from_bytes([1; 32])),
            payload_nonce: Some(Nonce8::from_bytes([2; 8])),
            mac: Some(Tag::from_bytes([3; 16])),
            epoch: 4,
            store_seq: 77,
            store_digest: [5; 16],
            chain: Tag::from_bytes([6; 16]),
            retry_after_ns: 123,
            ..ReplyControl::basic(9)
        };
        assert_eq!(ReplyControl::decode(&c.encode()).unwrap(), c);
        let minimal = ReplyControl::basic(10);
        assert_eq!(ReplyControl::decode(&minimal.encode()).unwrap(), minimal);
    }

    #[test]
    fn chain_input_binds_every_byzantine_field() {
        let base = ReplyControl {
            epoch: 1,
            store_seq: 2,
            store_digest: [3; 16],
            retry_after_ns: 4,
            ..ReplyControl::basic(9)
        };
        let reference = chain_input(Status::Ok, Opcode::Get, 5, &base);
        // every relevant mutation changes the canonical bytes
        assert_ne!(chain_input(Status::Error, Opcode::Get, 5, &base), reference);
        assert_ne!(chain_input(Status::Ok, Opcode::Put, 5, &base), reference);
        assert_ne!(chain_input(Status::Ok, Opcode::Get, 6, &base), reference);
        let mut m = base.clone();
        m.oid = 10;
        assert_ne!(chain_input(Status::Ok, Opcode::Get, 5, &m), reference);
        let mut m = base.clone();
        m.epoch = 2;
        assert_ne!(chain_input(Status::Ok, Opcode::Get, 5, &m), reference);
        let mut m = base.clone();
        m.store_seq = 3;
        assert_ne!(chain_input(Status::Ok, Opcode::Get, 5, &m), reference);
        let mut m = base.clone();
        m.store_digest[0] ^= 1;
        assert_ne!(chain_input(Status::Ok, Opcode::Get, 5, &m), reference);
        let mut m = base.clone();
        m.retry_after_ns = 5;
        assert_ne!(chain_input(Status::Ok, Opcode::Get, 5, &m), reference);
        // ... while the chain tag itself is deliberately excluded
        let mut m = base.clone();
        m.chain = Tag::from_bytes([0xFF; 16]);
        assert_eq!(chain_input(Status::Ok, Opcode::Get, 5, &m), reference);
    }

    #[test]
    fn busy_status_roundtrips() {
        assert_eq!(Status::from_u8(Status::Busy as u8), Some(Status::Busy));
        let f = ReplyFrame {
            status: Status::Busy,
            opcode: Opcode::Put,
            reply_seq: 3,
            sealed_control: vec![],
            payload: vec![],
        };
        assert_eq!(
            ReplyFrame::decode(&f.encode()).unwrap().status,
            Status::Busy
        );
    }

    #[test]
    fn control_size_matches_paper_estimate() {
        // 16-byte keys with key material: 8 + 2 + 16 + 1 + 40 = 67 bytes of
        // plaintext — the paper's "≈56 B" order of magnitude.
        assert_eq!(RequestControl::encoded_len(16, true), 67);
        let c = RequestControl {
            oid: 1,
            key: vec![0; 16],
            k_op: Some(Key256::from_bytes([0; 32])),
            payload_nonce: Some(Nonce8::from_bytes([0; 8])),
        };
        assert_eq!(c.encode().len(), 67);
    }

    #[test]
    fn nonces_never_collide_across_directions() {
        for i in 0..1000u64 {
            assert_ne!(request_nonce(i), reply_nonce(i));
            if i > 0 {
                assert_ne!(request_nonce(i), request_nonce(i - 1));
                assert_ne!(reply_nonce(i), reply_nonce(i - 1));
            }
        }
    }

    #[test]
    fn aad_binds_opcode_and_client() {
        assert_ne!(request_aad(Opcode::Put, 1), request_aad(Opcode::Get, 1));
        assert_ne!(request_aad(Opcode::Put, 1), request_aad(Opcode::Put, 2));
    }

    #[test]
    fn shard_of_key_matches_sharded_table_routing() {
        let table: precursor_storage::ShardedRobinHoodMap<Vec<u8>, ()> =
            precursor_storage::ShardedRobinHoodMap::with_capacity(4, 64);
        for i in 0..256u32 {
            let key = format!("user{i}").into_bytes();
            assert_eq!(shard_of_key(&key, 4), table.shard_of(&key));
            assert_eq!(shard_of_key(&key, 1), 0);
        }
    }
}
