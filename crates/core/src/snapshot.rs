//! Sealed snapshots with rollback detection.
//!
//! Precursor is an in-memory store; for persistence the paper points at
//! SGX's trusted monotonic counters to "detect state rollback attacks and
//! forking" (§2.1, deferring to Brandenburger et al. and SPEICHER). This
//! module provides that integration: [`PrecursorServer::snapshot`] seals
//! the key-value state (enclave metadata *and* the untrusted ciphertexts)
//! under the enclave's platform-bound sealing key, binding in a fresh
//! monotonic-counter version; [`PrecursorServer::restore`] only accepts the
//! blob matching the counter's *current* value, so replaying an older
//! snapshot — the classic rollback attack — is rejected.
//!
//! The snapshot carries ciphertexts exactly as stored (values remain
//! protected by their one-time keys); the sealed layer protects the enclave
//! metadata (`K_operation`s, the storage key) and the snapshot's integrity.

use precursor_crypto::keys::{Key128, Key256, Nonce8};
use precursor_sgx::counters::MonotonicCounter;
use precursor_sgx::sealing;
use precursor_sim::CostModel;

use crate::config::{Config, EncryptionMode};
use crate::error::StoreError;
use crate::server::PrecursorServer;
use crate::wire::Status;

// One serialized entry of the snapshot body. The same framing carries a
// single entry inside a journal `Put` record, so snapshot restore and
// journal replay install entries through one codec.
#[derive(Debug)]
pub(crate) struct SnapshotEntry {
    pub key: Vec<u8>,
    pub k_op: Key256,
    pub payload_nonce: Nonce8,
    pub storage_seq: u64,
    pub client_id: u32,
    pub payload_len: usize,
    pub stored_bytes: Vec<u8>, // ciphertext ‖ MAC (client mode) or GCM blob
}

// Bounds-checked slice reader shared by the snapshot and journal codecs.
pub(crate) fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], StoreError> {
    if *pos + n > buf.len() {
        return Err(StoreError::MalformedFrame);
    }
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

impl SnapshotEntry {
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.key);
        out.extend_from_slice(self.k_op.as_bytes());
        out.extend_from_slice(self.payload_nonce.as_bytes());
        out.extend_from_slice(&self.storage_seq.to_le_bytes());
        out.extend_from_slice(&self.client_id.to_le_bytes());
        out.extend_from_slice(&(self.payload_len as u32).to_le_bytes());
        out.extend_from_slice(&(self.stored_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.stored_bytes);
    }

    pub(crate) fn decode_from(buf: &[u8], pos: &mut usize) -> Result<SnapshotEntry, StoreError> {
        let key_len = u16::from_le_bytes(take(buf, pos, 2)?.try_into().expect("2")) as usize;
        let key = take(buf, pos, key_len)?.to_vec();
        let k_op = Key256::try_from(take(buf, pos, 32)?).map_err(|_| StoreError::MalformedFrame)?;
        let payload_nonce =
            Nonce8::try_from(take(buf, pos, 8)?).map_err(|_| StoreError::MalformedFrame)?;
        let storage_seq = u64::from_le_bytes(take(buf, pos, 8)?.try_into().expect("8"));
        let client_id = u32::from_le_bytes(take(buf, pos, 4)?.try_into().expect("4"));
        let payload_len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().expect("4")) as usize;
        let stored_len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().expect("4")) as usize;
        let stored_bytes = take(buf, pos, stored_len)?.to_vec();
        Ok(SnapshotEntry {
            key,
            k_op,
            payload_nonce,
            storage_seq,
            client_id,
            payload_len,
            stored_bytes,
        })
    }
}

pub(crate) struct SnapshotBody {
    pub mode: EncryptionMode,
    pub storage_key: Key128,
    pub storage_seq: u64,
    /// Store-mutation counter + running digest at seal time: the restored
    /// server resumes them, so clients comparing `store_seq`/digest across
    /// a restart can detect a rolled-back or forked host.
    pub mutation_seq: u64,
    pub state_digest: [u8; 16],
    pub entries: Vec<SnapshotEntry>,
    /// Per-client `(expected_oid, last_status, epoch)` windows, indexed by
    /// client_id — lets a restarted server resume its at-most-once
    /// semantics (and keep connection epochs strictly increasing) for
    /// clients that reconnect.
    pub sessions: Vec<(u64, Status, u32)>,
    /// Journal epoch the server was writing when the snapshot was sealed
    /// (`0` when no journal is attached).
    pub journal_epoch: u64,
    /// Watermark: sequence number of the last journal record whose effects
    /// this snapshot already covers. Recovery replays only records past it
    /// (and only when the journal's epoch matches `journal_epoch`).
    pub journal_seq: u64,
    /// MAC-chain value at the journal head when the snapshot was sealed
    /// (genesis chain when no journal is attached). After compaction this
    /// is the trusted anchor for authenticating the shipped journal tail:
    /// a `(snapshot, tail)` pair carries its own recovery root.
    pub journal_chain: [u8; 16],
}

impl SnapshotBody {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(match self.mode {
            EncryptionMode::ClientSide => 0u8,
            EncryptionMode::ServerSide => 1u8,
        });
        out.extend_from_slice(self.storage_key.as_bytes());
        out.extend_from_slice(&self.storage_seq.to_le_bytes());
        out.extend_from_slice(&self.mutation_seq.to_le_bytes());
        out.extend_from_slice(&self.state_digest);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            e.encode_into(&mut out);
        }
        out.extend_from_slice(&(self.sessions.len() as u32).to_le_bytes());
        for (expected_oid, last_status, epoch) in &self.sessions {
            out.extend_from_slice(&expected_oid.to_le_bytes());
            out.push(*last_status as u8);
            out.extend_from_slice(&epoch.to_le_bytes());
        }
        out.extend_from_slice(&self.journal_epoch.to_le_bytes());
        out.extend_from_slice(&self.journal_seq.to_le_bytes());
        out.extend_from_slice(&self.journal_chain);
        out
    }

    pub(crate) fn decode(buf: &[u8]) -> Result<SnapshotBody, StoreError> {
        let mut pos = 0usize;
        let mode = match take(buf, &mut pos, 1)?[0] {
            0 => EncryptionMode::ClientSide,
            1 => EncryptionMode::ServerSide,
            _ => return Err(StoreError::MalformedFrame),
        };
        let storage_key =
            Key128::try_from(take(buf, &mut pos, 16)?).map_err(|_| StoreError::MalformedFrame)?;
        let storage_seq = u64::from_le_bytes(take(buf, &mut pos, 8)?.try_into().expect("8"));
        let mutation_seq = u64::from_le_bytes(take(buf, &mut pos, 8)?.try_into().expect("8"));
        let state_digest: [u8; 16] = take(buf, &mut pos, 16)?.try_into().expect("16");
        let count = u32::from_le_bytes(take(buf, &mut pos, 4)?.try_into().expect("4")) as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            entries.push(SnapshotEntry::decode_from(buf, &mut pos)?);
        }
        let session_count =
            u32::from_le_bytes(take(buf, &mut pos, 4)?.try_into().expect("4")) as usize;
        let mut sessions = Vec::with_capacity(session_count.min(1 << 16));
        for _ in 0..session_count {
            let expected_oid = u64::from_le_bytes(take(buf, &mut pos, 8)?.try_into().expect("8"));
            let last_status =
                Status::from_u8(take(buf, &mut pos, 1)?[0]).ok_or(StoreError::MalformedFrame)?;
            let epoch = u32::from_le_bytes(take(buf, &mut pos, 4)?.try_into().expect("4"));
            sessions.push((expected_oid, last_status, epoch));
        }
        let journal_epoch = u64::from_le_bytes(take(buf, &mut pos, 8)?.try_into().expect("8"));
        let journal_seq = u64::from_le_bytes(take(buf, &mut pos, 8)?.try_into().expect("8"));
        let journal_chain: [u8; 16] = take(buf, &mut pos, 16)?.try_into().expect("16");
        if pos != buf.len() {
            return Err(StoreError::MalformedFrame);
        }
        Ok(SnapshotBody {
            mode,
            storage_key,
            storage_seq,
            mutation_seq,
            state_digest,
            entries,
            sessions,
            journal_epoch,
            journal_seq,
            journal_chain,
        })
    }
}

impl PrecursorServer {
    /// Seals the current key-value state into a snapshot blob, incrementing
    /// the trusted monotonic `counter` so the new version supersedes every
    /// older snapshot.
    ///
    /// When a [`FaultPlan`](precursor_rdma::faults::FaultPlan) with a
    /// `SnapshotSeal` rule is installed, the returned blob models what the
    /// untrusted host actually persisted: a crash mid-write tears it short,
    /// a corrupting host flips a bit. Either damage makes later unsealing
    /// fail, so recovery falls back to an older snapshot plus the journal.
    pub fn snapshot(&mut self, counter: &mut MonotonicCounter) -> Vec<u8> {
        let version = counter.increment();
        self.snapshot_at(version)
    }

    // Seals at an explicit `version` without touching any counter — the
    // tentative first phase of journal compaction, which advances the
    // trusted counter only after the sealed blob validates (so a
    // host-damaged seal aborts with the previous snapshot still
    // authoritative).
    pub(crate) fn snapshot_at(&mut self, version: u64) -> Vec<u8> {
        let body = self.snapshot_body();
        let key = self.sealing_key();
        let mut blob = self.seal_with_rng(&key, version, &body.encode());
        self.apply_durable_fault(precursor_rdma::faults::FaultSite::SnapshotSeal, &mut blob);
        blob
    }

    /// Restores a server from a sealed snapshot, verifying it matches the
    /// trusted counter's *current* value (rollback detection).
    ///
    /// # Errors
    ///
    /// [`StoreError::SnapshotRejected`] when the blob was sealed at a
    /// different version (a rolled-back or forked snapshot), is tampered
    /// with, or comes from a different platform/enclave;
    /// [`StoreError::MalformedFrame`] when the sealed body does not parse;
    /// [`StoreError::MalformedFrame`] also when the snapshot's mode differs
    /// from `config.mode`.
    pub fn restore(
        config: Config,
        cost: &CostModel,
        sealed: &[u8],
        counter: &MonotonicCounter,
    ) -> Result<PrecursorServer, StoreError> {
        let mut server = PrecursorServer::new(config, cost);
        let key = server.sealing_key();
        let body_bytes = sealing::unseal(&key, counter.read(), sealed)
            .map_err(|_| StoreError::SnapshotRejected)?;
        let body = SnapshotBody::decode(&body_bytes)?;
        if body.mode != server.config().mode {
            return Err(StoreError::MalformedFrame);
        }
        server.restore_body(body)?;
        Ok(server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PrecursorClient;

    fn loaded_server() -> (PrecursorServer, PrecursorClient) {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::default(), &cost);
        let mut client = PrecursorClient::connect(&mut server, 1).unwrap();
        for i in 0..50u32 {
            client
                .put_sync(
                    &mut server,
                    &i.to_le_bytes(),
                    format!("value-{i}").as_bytes(),
                )
                .unwrap();
        }
        (server, client)
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let cost = CostModel::default();
        let (mut server, _client) = loaded_server();
        let mut counter = MonotonicCounter::new();
        let blob = server.snapshot(&mut counter);

        let mut restored =
            PrecursorServer::restore(Config::default(), &cost, &blob, &counter).unwrap();
        assert_eq!(restored.len(), 50);
        // a fresh client can read every restored key
        let mut client = PrecursorClient::connect(&mut restored, 9).unwrap();
        for i in 0..50u32 {
            assert_eq!(
                client.get_sync(&mut restored, &i.to_le_bytes()).unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn rolled_back_snapshot_is_rejected() {
        let cost = CostModel::default();
        let (mut server, mut client) = loaded_server();
        let mut counter = MonotonicCounter::new();
        let old_blob = server.snapshot(&mut counter);
        // state advances and a newer snapshot is taken
        client.put_sync(&mut server, b"new-key", b"new").unwrap();
        let _new_blob = server.snapshot(&mut counter);

        // an attacker presents the old snapshot
        assert_eq!(
            PrecursorServer::restore(Config::default(), &cost, &old_blob, &counter).unwrap_err(),
            StoreError::SnapshotRejected
        );
    }

    #[test]
    fn latest_snapshot_restores_after_rollback_attempt() {
        let cost = CostModel::default();
        let (mut server, mut client) = loaded_server();
        let mut counter = MonotonicCounter::new();
        let _old = server.snapshot(&mut counter);
        client.put_sync(&mut server, b"new-key", b"new").unwrap();
        let latest = server.snapshot(&mut counter);
        let mut restored =
            PrecursorServer::restore(Config::default(), &cost, &latest, &counter).unwrap();
        assert_eq!(restored.len(), 51);
        let mut c = PrecursorClient::connect(&mut restored, 2).unwrap();
        assert_eq!(c.get_sync(&mut restored, b"new-key").unwrap(), b"new");
    }

    #[test]
    fn tampered_snapshot_is_rejected() {
        let cost = CostModel::default();
        let (mut server, _client) = loaded_server();
        let mut counter = MonotonicCounter::new();
        let mut blob = server.snapshot(&mut counter);
        blob[40] ^= 1;
        assert_eq!(
            PrecursorServer::restore(Config::default(), &cost, &blob, &counter).unwrap_err(),
            StoreError::SnapshotRejected
        );
    }

    #[test]
    fn snapshot_preserves_integrity_protection() {
        // tampering with restored untrusted memory is still detected
        let cost = CostModel::default();
        let (mut server, _client) = loaded_server();
        let mut counter = MonotonicCounter::new();
        let blob = server.snapshot(&mut counter);
        let mut restored =
            PrecursorServer::restore(Config::default(), &cost, &blob, &counter).unwrap();
        assert!(restored.corrupt_stored_payload(&3u32.to_le_bytes()));
        let mut client = PrecursorClient::connect(&mut restored, 3).unwrap();
        assert_eq!(
            client.get_sync(&mut restored, &3u32.to_le_bytes()),
            Err(StoreError::IntegrityViolation)
        );
        assert_eq!(restored.audit_key(&3u32.to_le_bytes()), Some(false));
    }

    #[test]
    fn server_encryption_mode_snapshots_too() {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::server_encryption(), &cost);
        let mut client = PrecursorClient::connect(&mut server, 1).unwrap();
        client
            .put_sync(&mut server, b"k", b"server-enc value")
            .unwrap();
        let mut counter = MonotonicCounter::new();
        let blob = server.snapshot(&mut counter);
        let mut restored =
            PrecursorServer::restore(Config::server_encryption(), &cost, &blob, &counter).unwrap();
        let mut c = PrecursorClient::connect(&mut restored, 2).unwrap();
        assert_eq!(
            c.get_sync(&mut restored, b"k").unwrap(),
            b"server-enc value"
        );
    }

    #[test]
    fn mode_mismatch_is_rejected() {
        let cost = CostModel::default();
        let (mut server, _client) = loaded_server();
        let mut counter = MonotonicCounter::new();
        let blob = server.snapshot(&mut counter);
        assert!(
            PrecursorServer::restore(Config::server_encryption(), &cost, &blob, &counter).is_err()
        );
    }

    #[test]
    fn inlined_values_survive_snapshots() {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::with_small_value_inlining(), &cost);
        let mut client = PrecursorClient::connect(&mut server, 1).unwrap();
        client.put_sync(&mut server, b"tiny", b"x").unwrap();
        client.put_sync(&mut server, b"big", &[7u8; 500]).unwrap();
        let mut counter = MonotonicCounter::new();
        let blob = server.snapshot(&mut counter);
        let mut restored =
            PrecursorServer::restore(Config::with_small_value_inlining(), &cost, &blob, &counter)
                .unwrap();
        let mut c = PrecursorClient::connect(&mut restored, 2).unwrap();
        assert_eq!(c.get_sync(&mut restored, b"tiny").unwrap(), b"x");
        assert_eq!(c.get_sync(&mut restored, b"big").unwrap(), vec![7u8; 500]);
    }

    #[test]
    fn empty_store_snapshots() {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::default(), &cost);
        let mut counter = MonotonicCounter::new();
        let blob = server.snapshot(&mut counter);
        let restored = PrecursorServer::restore(Config::default(), &cost, &blob, &counter).unwrap();
        assert!(restored.is_empty());
    }
}
