//! Store configuration.

use precursor_sim::time::Nanos;

/// Where payload encryption happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncryptionMode {
    /// The paper's design (§3): clients encrypt values under one-time keys;
    /// the payload never enters the enclave.
    #[default]
    ClientSide,
    /// The conventional baseline (§2.4, §5.1): the full payload is
    /// transport-encrypted into the enclave, verified, re-encrypted under a
    /// server storage key, and stored back out. Used as the "Precursor
    /// server-encryption" comparison system.
    ServerSide,
}

/// Configuration of a Precursor server instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Payload encryption scheme.
    pub mode: EncryptionMode,
    /// Capacity of each per-client request and reply ring, in bytes.
    pub ring_bytes: usize,
    /// Initial size of the untrusted payload pool, in bytes; the pool grows
    /// by the same amount per modelled ocall when exhausted (§3.8).
    pub pool_bytes: usize,
    /// Maximum concurrent clients.
    pub max_clients: usize,
    /// Largest accepted key, in bytes.
    pub max_key_bytes: usize,
    /// Largest accepted value, in bytes.
    pub max_value_bytes: usize,
    /// Modelled bytes per enclave hash-table slot, used for EPC accounting
    /// (key 16 B + K_op 32 B + oid/client 8 B + pointer 12 B + hash & padding
    /// ≈ 88 B — yields Table 1's ≈11.6 MiB at 100 k keys).
    pub model_slot_bytes: usize,
    /// Initial enclave hash-table slots ("only a subset of the hash table"
    /// is initialized up front, §5.4).
    pub initial_table_slots: usize,
    /// Most request records one [`poll`](crate::PrecursorServer::poll) sweep
    /// consumes from a single client's ring before moving to the next client
    /// (round-robin fairness — a flooder cannot monopolize the trusted
    /// thread). `0` disables the budget (unbounded, pre-hardening
    /// behaviour). Unconsumed records simply wait; no reply is generated and
    /// no `oid` is burned.
    pub poll_budget_per_client: usize,
    /// Maximum untrusted-pool bytes (counted in slot capacities) one client
    /// may hold across its stored values. Exceeding puts are refused with
    /// [`Status::Busy`](crate::wire::Status::Busy) backpressure instead of
    /// growing the pool. `0` disables quotas.
    pub pool_quota_bytes: usize,
    /// Maximum buffered [`OpReport`](crate::OpReport)s held for
    /// [`take_reports`](crate::PrecursorServer::take_reports). When a caller
    /// never drains them, the oldest are dropped (and counted) instead of
    /// growing memory without bound.
    pub max_buffered_reports: usize,
    /// Retry hint carried in `Busy` replies, in simulated nanoseconds.
    pub busy_retry_ns: u64,
    /// Number of trusted polling shards (§3.8: "multiple trusted polling
    /// threads"). Each shard owns the clients whose `client_id % shards`
    /// equals its index plus a partition of the enclave hash table keyed by
    /// a stable hash of the key; requests that hash to a foreign shard
    /// cross a handoff queue. `1` (the default) is the single sequential
    /// polling loop — the pre-sharding code path, kept bit-identical so
    /// deterministic sim runs and seeded suites reproduce.
    pub shards: usize,
    /// Values of at most this many bytes are stored directly *inside* the
    /// enclave instead of the untrusted pool — the paper's proposed future
    /// extension for values smaller than the control data (§5.2: "one could
    /// as an alternative store the value directly inside the trusted
    /// memory... We consider this as a future extension"). `0` disables it
    /// (the paper's evaluated configuration).
    pub inline_value_max: usize,
    /// Seal all replies of one client's sweep run through a single batched
    /// crypto pass instead of per-record calls (DESIGN.md §15). Reply bytes
    /// and MAC chains are bit-identical to the unbatched path — only the
    /// fixed crypto setup cost is amortised across the batch. Off by
    /// default so the shards=1 golden digest and stage pins reproduce.
    pub batched_sealing: bool,
    /// Adapt the per-client poll budget between sweeps: a ring that polled
    /// empty backs off (budget halves toward
    /// [`poll_budget_min`](Config::poll_budget_min)), a ring that consumed
    /// its whole budget bursts (budget doubles toward
    /// [`poll_budget_max`](Config::poll_budget_max)), anything in between
    /// holds steady. The
    /// round-robin visit order is unchanged, so PR-2 fairness (≤2×) is
    /// preserved: the budget only caps per-sweep consumption. Off by
    /// default.
    pub adaptive_poll_budget: bool,
    /// Lower bound of the adaptive per-client poll budget.
    pub poll_budget_min: usize,
    /// Upper bound of the adaptive per-client poll budget. Kept at the
    /// static [`poll_budget_per_client`](Config::poll_budget_per_client)
    /// default so the PR-2 flooding cap still holds with adaptation on.
    pub poll_budget_max: usize,
    /// Elide the per-sweep credit WRITE while the newly freed ring bytes
    /// stay below this threshold; the deferred update is flushed by the
    /// first sweep that pops nothing from that client, so a producer
    /// blocked on `RingFull` is unblocked within one sweep (liveness — see
    /// DESIGN.md §15). `0` disables elision (a credit WRITE per consuming
    /// sweep, the pre-fast-path behaviour).
    pub lazy_credit_bytes: usize,
    /// Reuse a per-server arena for reply-frame encoding so the steady
    /// state allocates nothing per op. Purely an allocation-path knob: the
    /// emitted bytes are identical. Off by default.
    pub reply_arena: bool,
    /// Drive poll sweeps from the dirty-ring set instead of scanning every
    /// connected ring: request rings are registered with a write-watch, a
    /// delivered client WRITE marks the ring dirty, and a sweep visits only
    /// dirty rings (plus rings with an elided credit still pending, so the
    /// lazy-credit flush rule keeps its one-sweep liveness bound). A ring
    /// left non-empty by the fairness budget re-marks itself. Idle rings
    /// cost nothing, making a sweep O(dirty) instead of O(clients) — the
    /// 100k-client scale mode (DESIGN.md §17). Off by default so the
    /// shards=1 golden digest reproduces through the scan path untouched.
    pub dirty_ring_sweep: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            mode: EncryptionMode::ClientSide,
            ring_bytes: 1 << 20,
            pool_bytes: 64 << 20,
            max_clients: 128,
            max_key_bytes: 256,
            max_value_bytes: 256 << 10,
            model_slot_bytes: 88,
            initial_table_slots: 2048,
            shards: 1,
            inline_value_max: 0,
            poll_budget_per_client: 128,
            pool_quota_bytes: 0,
            max_buffered_reports: 1 << 16,
            busy_retry_ns: 100_000,
            batched_sealing: false,
            adaptive_poll_budget: false,
            poll_budget_min: 16,
            poll_budget_max: 128,
            lazy_credit_bytes: 0,
            reply_arena: false,
            dirty_ring_sweep: false,
        }
    }
}

impl Config {
    /// Enables the small-value in-enclave extension with the paper's ≈56 B
    /// control-data threshold (§5.2).
    pub fn with_small_value_inlining() -> Config {
        Config {
            inline_value_max: 56,
            ..Config::default()
        }
    }
}

impl Config {
    /// A configuration with the server-encryption baseline enabled.
    pub fn server_encryption() -> Config {
        Config {
            mode: EncryptionMode::ServerSide,
            ..Config::default()
        }
    }

    /// A configuration with `shards` trusted polling shards.
    pub fn sharded(shards: usize) -> Config {
        Config {
            shards: shards.max(1),
            ..Config::default()
        }
    }

    /// Turns on every fast-path knob (adaptive sweeps, batched sealing,
    /// credit elision, reply arena) on top of `self`. The observable
    /// protocol — reply bytes, MAC chains, at-most-once window — is
    /// unchanged; see DESIGN.md §15 for the invariants.
    pub fn with_fast_path(mut self) -> Config {
        self.batched_sealing = true;
        self.adaptive_poll_budget = true;
        self.lazy_credit_bytes = 4096;
        self.reply_arena = true;
        self
    }

    /// The all-knobs-on fast-path configuration.
    pub fn fast() -> Config {
        Config::default().with_fast_path()
    }

    /// Whether any fast-path knob is enabled (used to gate the amortised
    /// cost attribution in the sweep).
    pub fn fast_path_enabled(&self) -> bool {
        self.batched_sealing || self.adaptive_poll_budget || self.lazy_credit_bytes > 0
    }
}

/// Client-side timeout/retry parameters, all in simulated time.
///
/// An operation is retransmitted when no reply arrives within
/// `per_try_timeout`; successive retransmissions back off exponentially
/// (`backoff_base` doubling up to `backoff_cap`, with multiplicative
/// `jitter`). After `max_attempts` retransmissions the operation fails with
/// [`crate::StoreError::RetriesExhausted`]; if `overall_timeout` elapses
/// first it fails with [`crate::StoreError::Timeout`]. Retransmissions are
/// idempotent: they re-issue the *same* `oid` (and, for puts, the same
/// `K_operation`), so the server's at-most-once window applies each update
/// exactly once no matter how often the request is repeated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Reply deadline of a single transmission attempt.
    pub per_try_timeout: Nanos,
    /// Hard deadline across all attempts of one operation.
    pub overall_timeout: Nanos,
    /// First retransmission delay (doubles per attempt).
    pub backoff_base: Nanos,
    /// Upper bound of the retransmission delay.
    pub backoff_cap: Nanos,
    /// Multiplicative jitter applied to each delay, in `[0, 1]`.
    pub jitter: f64,
    /// Retransmissions allowed per operation (the initial send is free).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            per_try_timeout: Nanos(100_000),    // 100 µs — ≫ one RTT
            overall_timeout: Nanos(50_000_000), // 50 ms
            backoff_base: Nanos(50_000),
            backoff_cap: Nanos(3_200_000),
            jitter: 0.2,
            max_attempts: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_client_side() {
        assert_eq!(Config::default().mode, EncryptionMode::ClientSide);
    }

    #[test]
    fn server_encryption_flips_only_mode() {
        let a = Config::default();
        let b = Config::server_encryption();
        assert_eq!(b.mode, EncryptionMode::ServerSide);
        assert_eq!(a.ring_bytes, b.ring_bytes);
    }

    #[test]
    fn overload_defaults_are_sane() {
        let c = Config::default();
        assert!(c.poll_budget_per_client > 0, "fairness on by default");
        assert_eq!(c.pool_quota_bytes, 0, "quotas opt-in");
        assert!(c.max_buffered_reports >= 1 << 16);
        assert!(c.busy_retry_ns > 0);
    }

    #[test]
    fn default_is_single_shard() {
        assert_eq!(Config::default().shards, 1);
        assert_eq!(Config::sharded(0).shards, 1);
        assert_eq!(Config::sharded(4).shards, 4);
    }

    #[test]
    fn fast_path_is_off_by_default() {
        let c = Config::default();
        assert!(!c.batched_sealing);
        assert!(!c.adaptive_poll_budget);
        assert_eq!(c.lazy_credit_bytes, 0);
        assert!(!c.reply_arena);
        assert!(!c.fast_path_enabled());
    }

    #[test]
    fn fast_enables_every_knob_within_budget_bounds() {
        let c = Config::fast();
        assert!(c.fast_path_enabled());
        assert!(c.batched_sealing && c.adaptive_poll_budget && c.reply_arena);
        assert!(c.lazy_credit_bytes > 0);
        assert!(c.poll_budget_min >= 1);
        assert!(c.poll_budget_min <= c.poll_budget_max);
        // The adaptive ceiling must not exceed the static PR-2 budget, so
        // the flooding cap (`max per-sweep consumption ≤ budget`) is
        // unchanged with adaptation on.
        assert!(c.poll_budget_max <= Config::default().poll_budget_per_client);
    }

    #[test]
    fn dirty_ring_sweep_is_off_by_default_and_orthogonal_to_fast() {
        let c = Config::default();
        assert!(!c.dirty_ring_sweep);
        // A scheduling knob, not a cost-amortisation knob: it must not
        // flip the fast-path cost attribution.
        let d = Config {
            dirty_ring_sweep: true,
            ..Config::default()
        };
        assert!(!d.fast_path_enabled());
    }

    #[test]
    fn retry_policy_defaults_are_ordered() {
        let p = RetryPolicy::default();
        assert!(p.backoff_base <= p.backoff_cap);
        assert!(p.per_try_timeout < p.overall_timeout);
        assert!(p.max_attempts > 0);
        assert!((0.0..=1.0).contains(&p.jitter));
    }
}
