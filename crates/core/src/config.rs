//! Store configuration.

/// Where payload encryption happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncryptionMode {
    /// The paper's design (§3): clients encrypt values under one-time keys;
    /// the payload never enters the enclave.
    #[default]
    ClientSide,
    /// The conventional baseline (§2.4, §5.1): the full payload is
    /// transport-encrypted into the enclave, verified, re-encrypted under a
    /// server storage key, and stored back out. Used as the "Precursor
    /// server-encryption" comparison system.
    ServerSide,
}

/// Configuration of a Precursor server instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Payload encryption scheme.
    pub mode: EncryptionMode,
    /// Capacity of each per-client request and reply ring, in bytes.
    pub ring_bytes: usize,
    /// Initial size of the untrusted payload pool, in bytes; the pool grows
    /// by the same amount per modelled ocall when exhausted (§3.8).
    pub pool_bytes: usize,
    /// Maximum concurrent clients.
    pub max_clients: usize,
    /// Largest accepted key, in bytes.
    pub max_key_bytes: usize,
    /// Largest accepted value, in bytes.
    pub max_value_bytes: usize,
    /// Modelled bytes per enclave hash-table slot, used for EPC accounting
    /// (key 16 B + K_op 32 B + oid/client 8 B + pointer 12 B + hash & padding
    /// ≈ 88 B — yields Table 1's ≈11.6 MiB at 100 k keys).
    pub model_slot_bytes: usize,
    /// Initial enclave hash-table slots ("only a subset of the hash table"
    /// is initialized up front, §5.4).
    pub initial_table_slots: usize,
    /// Values of at most this many bytes are stored directly *inside* the
    /// enclave instead of the untrusted pool — the paper's proposed future
    /// extension for values smaller than the control data (§5.2: "one could
    /// as an alternative store the value directly inside the trusted
    /// memory... We consider this as a future extension"). `0` disables it
    /// (the paper's evaluated configuration).
    pub inline_value_max: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            mode: EncryptionMode::ClientSide,
            ring_bytes: 1 << 20,
            pool_bytes: 64 << 20,
            max_clients: 128,
            max_key_bytes: 256,
            max_value_bytes: 256 << 10,
            model_slot_bytes: 88,
            initial_table_slots: 2048,
            inline_value_max: 0,
        }
    }
}

impl Config {
    /// Enables the small-value in-enclave extension with the paper's ≈56 B
    /// control-data threshold (§5.2).
    pub fn with_small_value_inlining() -> Config {
        Config {
            inline_value_max: 56,
            ..Config::default()
        }
    }
}

impl Config {
    /// A configuration with the server-encryption baseline enabled.
    pub fn server_encryption() -> Config {
        Config {
            mode: EncryptionMode::ServerSide,
            ..Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_client_side() {
        assert_eq!(Config::default().mode, EncryptionMode::ClientSide);
    }

    #[test]
    fn server_encryption_flips_only_mode() {
        let a = Config::default();
        let b = Config::server_encryption();
        assert_eq!(b.mode, EncryptionMode::ServerSide);
        assert_eq!(a.ring_bytes, b.ring_bytes);
    }
}
