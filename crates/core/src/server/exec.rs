//! Exec stage: per-opcode enclave execution against the Robin Hood shards.
//!
//! Owns [`StoreExec`] — the sharded enclave hash table, the untrusted
//! payload pool, the storage key/sequence of the server-encryption mode,
//! and the store-mutation evidence (sequence + digest). Execution turns a
//! validated request into a [`ReplyPlan`]; sealing the plan is the `seal`
//! stage's job, so that in sharded mode execution can run in shard order
//! while reply sequence numbers are still consumed in pop order.

use precursor_crypto::keys::{Key128, Key256, Nonce8, Tag};
use precursor_crypto::{cmac, gcm, sha256};
use precursor_rdma::adversary::AdversaryInjector;
use precursor_rdma::mr::Memory;
use precursor_sgx::enclave::{Enclave, RegionId};
use precursor_sim::meter::{Meter, Stage};
use precursor_sim::CostModel;
use precursor_storage::pool::{PoolRange, SlabPool};
use precursor_storage::robinhood::ShardedRobinHoodMap;

use crate::config::{Config, EncryptionMode};
use crate::error::StoreError;
use crate::wire::{payload_request_nonce, Opcode, RequestControl, RequestFrame, Status};

use super::seal::StoreEvidence;
use super::{cmac_key_of, PrecursorServer};

// Where a value's bytes live.
#[derive(Debug, Clone)]
pub(super) enum ValueStorage {
    /// In the untrusted payload pool (the paper's evaluated design).
    Untrusted(PoolRange),
    /// Inside the enclave (ciphertext ‖ MAC) — the small-value extension
    /// the paper proposes for values below the control-data size (§5.2).
    InEnclave(Vec<u8>),
}

// Trusted per-entry metadata: what the paper keeps in the enclave hash table
// ("the key item and a value pair composed of the K_operation and an
// associated pointer ptr", §3.7).
#[derive(Debug, Clone)]
pub(super) struct EntryMeta {
    pub(super) k_op: Key256,
    pub(super) payload_nonce: Nonce8,
    pub(super) storage_seq: u64, // server-encryption mode: storage GCM nonce counter
    pub(super) client_id: u32,
    pub(super) storage: ValueStorage,
    pub(super) payload_len: usize,
}

// What execution produced, before the reply is sealed. Sealing consumes
// the per-session `reply_seq` and advances the reply MAC chain, so it must
// happen in per-client pop order; execution may happen earlier — and, in
// sharded mode, on a different shard than the one that popped the record.
pub(super) enum ReplyPlan {
    /// A control-only reply (ok / error / cached ack) with `status`.
    Control { status: Status, oid: u64 },
    /// Busy backpressure (carries the configured retry hint).
    Busy { oid: u64 },
    /// The key routed to a node that does not own it: a sealed redirect
    /// carrying the authoritative owner hint (routing epoch + node id) in
    /// `retry_after_ns`, folded into the reply MAC chain like every other
    /// control field so the host cannot forge or replay it to misroute.
    NotMine { oid: u64, hint: u64 },
    /// A client-side-encryption get hit: key material + payload + MAC.
    GetHit {
        entry: EntryMeta,
        payload: Vec<u8>,
        mac: Tag,
        oid: u64,
    },
    /// A server-encryption get hit: the plaintext is re-sealed for
    /// transport at seal time, because the transport nonce uses the very
    /// `reply_seq` the control reply consumes.
    ServerEncGet { plain: Vec<u8>, oid: u64 },
}

// The narrow slice of server state the exec stage borrows per call: the
// trusted execution environment plus the cross-cutting knobs. Keeping
// these out of [`StoreExec`] lets the pipeline hold disjoint borrows of
// the store, the sessions and the ports at the same time.
pub(super) struct ExecCtx<'a> {
    pub(super) enclave: &'a mut Enclave,
    pub(super) config: &'a Config,
    pub(super) cost: &'a CostModel,
    pub(super) adversary: &'a mut Option<AdversaryInjector>,
}

// One validated, in-window request as the exec stage consumes it: the
// session slot it came from, the decrypted control segment, the raw frame
// (payload + MAC), and the session key for server-side decryption.
pub(super) struct ExecRequest<'a> {
    pub(super) idx: usize,
    pub(super) opcode: Opcode,
    pub(super) control: RequestControl,
    pub(super) frame: &'a RequestFrame,
    pub(super) session_key: &'a Key128,
}

// Exec-stage state: the enclave index, the untrusted payload pool, and
// the store-mutation evidence.
#[derive(Debug)]
pub(super) struct StoreExec {
    // The enclave index, partitioned into `Config::shards` Robin Hood
    // shards keyed by a stable hash of the key (one partition per trusted
    // polling worker, §3.8). One shard = the legacy unsharded table.
    pub(super) table: ShardedRobinHoodMap<Vec<u8>, EntryMeta>,
    pub(super) storage_key: Key128,
    pub(super) storage_seq: u64,
    // Store-mutation counter + running digest (rollback/fork evidence
    // carried in every reply control): bumped on every applied mutation.
    pub(super) mutation_seq: u64,
    pub(super) state_digest: [u8; 16],

    // modelled enclave regions (one table region per shard, so each
    // shard's EPC footprint grows independently with its own resizes)
    pub(super) table_regions: Vec<RegionId>,
    pub(super) misc_region: RegionId,
    pub(super) misc_touched: bool,
    pub(super) table_resizes_seen: Vec<u64>,

    // untrusted side
    pub(super) payload_mem: Memory,
    pub(super) pool: SlabPool,
    // Per-client untrusted-pool bytes (slot capacities), for quotas.
    pub(super) pool_used: Vec<usize>,
}

impl StoreExec {
    // The store-mutation evidence stamped into every sealed reply.
    pub(super) fn evidence(&self) -> StoreEvidence {
        StoreEvidence {
            mutation_seq: self.mutation_seq,
            state_digest: self.state_digest,
        }
    }

    // Frees a pool slot and keeps the quota + adversary registries in sync.
    pub(super) fn release_range(
        &mut self,
        adversary: &mut Option<AdversaryInjector>,
        owner: u32,
        range: PoolRange,
    ) {
        if let Some(used) = self.pool_used.get_mut(owner as usize) {
            *used = used.saturating_sub(range.capacity());
        }
        if let Some(adv) = adversary {
            adv.forget_payload(range.offset);
        }
        self.pool.free(range);
    }

    // Advances the store-mutation sequence + digest: called once per
    // *applied* mutation (put, delete, revocation eviction) — never for
    // snapshot-restore re-inserts, which reproduce already-counted state.
    pub(super) fn bump_mutation(&mut self, opcode: Opcode, key: &[u8]) {
        self.mutation_seq += 1;
        let mut input = Vec::with_capacity(16 + 1 + 8 + key.len());
        input.extend_from_slice(&self.state_digest);
        input.push(opcode as u8);
        input.extend_from_slice(&self.mutation_seq.to_le_bytes());
        input.extend_from_slice(key);
        let h = sha256::digest(&input);
        self.state_digest.copy_from_slice(&h[..16]);
    }

    // Executes a validated, in-window request against the store (the body
    // of Algorithm 2) and returns a [`ReplyPlan`] describing the reply to
    // seal.
    pub(super) fn execute_plan(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        req: ExecRequest<'_>,
        meter: &mut Meter,
    ) -> Result<(Status, usize, ReplyPlan), StoreError> {
        let ExecRequest {
            idx,
            opcode,
            control,
            frame,
            session_key,
        } = req;
        let cost = ctx.cost.clone();
        if control.key.len() > ctx.config.max_key_bytes
            || frame.payload.len() > ctx.config.max_value_bytes + gcm::TAG_LEN
        {
            return Ok((
                Status::Error,
                0,
                ReplyPlan::Control {
                    status: Status::Error,
                    oid: 0,
                },
            ));
        }

        match (opcode, ctx.config.mode) {
            (Opcode::Put, EncryptionMode::ClientSide) => {
                let (Some(k_op), Some(pn)) = (control.k_op.clone(), control.payload_nonce) else {
                    return Ok((
                        Status::Error,
                        0,
                        ReplyPlan::Control {
                            status: Status::Error,
                            oid: 0,
                        },
                    ));
                };
                let value_len = frame.payload.len();
                let inline = value_len <= ctx.config.inline_value_max;
                if !inline && self.over_quota(ctx.config, idx, value_len + Tag::LEN) {
                    return Ok((Status::Busy, 0, ReplyPlan::Busy { oid: control.oid }));
                }
                let storage = if inline {
                    // Small-value extension: the encrypted value (and its
                    // MAC) stay inside the enclave — no pool slot, no
                    // untrusted read on get (§5.2).
                    let mut data = frame.payload.clone();
                    data.extend_from_slice(frame.mac.as_bytes());
                    ctx.enclave.copy_across_boundary(data.len(), meter, &cost);
                    ValueStorage::InEnclave(data)
                } else {
                    let range = self.store_payload(ctx, &frame.payload, Some(&frame.mac), meter)?;
                    self.charge_range(ctx.adversary, idx, &range);
                    ValueStorage::Untrusted(range)
                };
                self.bump_mutation(Opcode::Put, &control.key);
                self.table_insert(
                    ctx,
                    control.key,
                    EntryMeta {
                        k_op,
                        payload_nonce: pn,
                        storage_seq: 0,
                        client_id: idx as u32,
                        storage,
                        payload_len: value_len,
                    },
                    meter,
                );
                Ok((
                    Status::Ok,
                    value_len,
                    ReplyPlan::Control {
                        status: Status::Ok,
                        oid: control.oid,
                    },
                ))
            }
            (Opcode::Put, EncryptionMode::ServerSide) => {
                // Conventional scheme (§2.4): full payload crosses into the
                // enclave, is decrypted, verified, re-encrypted for storage.
                // (Stored ciphertext has the same length as the transport
                // ciphertext: plaintext + one GCM tag.)
                if self.over_quota(ctx.config, idx, frame.payload.len()) {
                    return Ok((Status::Busy, 0, ReplyPlan::Busy { oid: control.oid }));
                }
                ctx.enclave
                    .copy_across_boundary(frame.payload.len(), meter, &cost);
                meter.charge(
                    Stage::Enclave,
                    cost.server_time(cost.aes_gcm(frame.payload.len())),
                );
                let plain = match gcm::open(
                    session_key,
                    &payload_request_nonce(control.oid),
                    &[],
                    &frame.payload,
                ) {
                    Ok(p) => p,
                    Err(_) => {
                        return Ok((
                            Status::Error,
                            0,
                            ReplyPlan::Control {
                                status: Status::Error,
                                oid: 0,
                            },
                        ))
                    }
                };
                let value_len = plain.len();
                self.storage_seq += 1;
                let seq = self.storage_seq;
                meter.charge(Stage::Enclave, cost.server_time(cost.aes_gcm(plain.len())));
                let stored = gcm::seal(
                    &self.storage_key,
                    &precursor_crypto::Nonce12::from_counter(seq),
                    &[],
                    &plain,
                );
                ctx.enclave.copy_across_boundary(stored.len(), meter, &cost);
                let range = self.store_payload(ctx, &stored, None, meter)?;
                self.charge_range(ctx.adversary, idx, &range);
                self.bump_mutation(Opcode::Put, &control.key);
                self.table_insert(
                    ctx,
                    control.key,
                    EntryMeta {
                        k_op: Key256::from_bytes([0; 32]),
                        payload_nonce: Nonce8::default(),
                        storage_seq: seq,
                        client_id: idx as u32,
                        storage: ValueStorage::Untrusted(range),
                        payload_len: stored.len(),
                    },
                    meter,
                );
                Ok((
                    Status::Ok,
                    value_len,
                    ReplyPlan::Control {
                        status: Status::Ok,
                        oid: control.oid,
                    },
                ))
            }
            (Opcode::Get, mode) => {
                let shard = self.table.shard_of(&control.key);
                let (found, stats) = self.table.get_tracked(&control.key);
                let found = found.cloned();
                self.charge_table_op(ctx, shard, &stats, meter);
                match found {
                    None => Ok((
                        Status::NotFound,
                        0,
                        ReplyPlan::Control {
                            status: Status::NotFound,
                            oid: control.oid,
                        },
                    )),
                    Some(entry) => match mode {
                        EncryptionMode::ClientSide => {
                            // Payload + its stored MAC leave untrusted memory
                            // as-is; only the tiny control reply is sealed in
                            // the enclave (§3.7 "Query data"). Inlined small
                            // values come out of the enclave instead.
                            let stored = match &entry.storage {
                                ValueStorage::Untrusted(range) => {
                                    let stored = self
                                        .payload_mem
                                        .read(range.offset, entry.payload_len + Tag::LEN);
                                    meter.charge(
                                        Stage::ServerCritical,
                                        cost.server_time(cost.memcpy(stored.len())),
                                    );
                                    stored
                                }
                                ValueStorage::InEnclave(data) => {
                                    let data = data.clone();
                                    ctx.enclave.copy_across_boundary(data.len(), meter, &cost);
                                    data
                                }
                            };
                            let (payload, mac_bytes) = stored.split_at(entry.payload_len);
                            let mac = Tag::try_from(mac_bytes).expect("stored MAC is 16 bytes");
                            let value_len = entry.payload_len;
                            Ok((
                                Status::Ok,
                                value_len,
                                ReplyPlan::GetHit {
                                    entry,
                                    payload: payload.to_vec(),
                                    mac,
                                    oid: control.oid,
                                },
                            ))
                        }
                        EncryptionMode::ServerSide => {
                            // Storage ciphertext crosses into the enclave and
                            // is decrypted here; re-encryption for transport
                            // waits until seal time (it consumes the reply
                            // sequence number).
                            let ValueStorage::Untrusted(range) = &entry.storage else {
                                unreachable!("server-encryption mode never inlines");
                            };
                            let stored = self.payload_mem.read(range.offset, entry.payload_len);
                            ctx.enclave.copy_across_boundary(stored.len(), meter, &cost);
                            meter.charge(
                                Stage::Enclave,
                                cost.server_time(cost.aes_gcm(stored.len())),
                            );
                            let plain = gcm::open(
                                &self.storage_key,
                                &precursor_crypto::Nonce12::from_counter(entry.storage_seq),
                                &[],
                                &stored,
                            )
                            .expect("storage ciphertext is server-controlled");
                            let value_len = plain.len();
                            Ok((
                                Status::Ok,
                                value_len,
                                ReplyPlan::ServerEncGet {
                                    plain,
                                    oid: control.oid,
                                },
                            ))
                        }
                    },
                }
            }
            (Opcode::Delete, _) => {
                let shard = self.table.shard_of(&control.key);
                let (removed, stats) = self.table.remove_tracked(&control.key);
                self.charge_table_op(ctx, shard, &stats, meter);
                match removed {
                    None => Ok((
                        Status::NotFound,
                        0,
                        ReplyPlan::Control {
                            status: Status::NotFound,
                            oid: control.oid,
                        },
                    )),
                    Some(entry) => {
                        if let ValueStorage::Untrusted(range) = entry.storage {
                            self.release_range(ctx.adversary, entry.client_id, range);
                        }
                        self.bump_mutation(Opcode::Delete, &control.key);
                        Ok((
                            Status::Ok,
                            0,
                            ReplyPlan::Control {
                                status: Status::Ok,
                                oid: control.oid,
                            },
                        ))
                    }
                }
            }
        }
    }

    // Whether storing `len` more pool bytes would push the client past its
    // memory quota (counted in slot capacities; disabled when 0). An
    // unclassifiable length is over any quota.
    pub(super) fn over_quota(&self, config: &Config, idx: usize, len: usize) -> bool {
        let quota = config.pool_quota_bytes;
        if quota == 0 {
            return false;
        }
        let used = self.pool_used.get(idx).copied().unwrap_or(0);
        match precursor_storage::pool::slot_capacity(len) {
            Some(cap) => used + cap > quota,
            None => true,
        }
    }

    // Charges a freshly allocated slot to the client's quota and registers
    // it with the adversary's tamper surface.
    pub(super) fn charge_range(
        &mut self,
        adversary: &mut Option<AdversaryInjector>,
        idx: usize,
        range: &PoolRange,
    ) {
        if self.pool_used.len() <= idx {
            self.pool_used.resize(idx + 1, 0);
        }
        self.pool_used[idx] += range.capacity();
        if let Some(adv) = adversary {
            adv.note_payload(range.offset, range.len, idx as u32);
        }
    }

    // Stores payload (+ optional MAC) into the untrusted pool, growing it
    // with a modelled ocall when exhausted (§3.8).
    pub(super) fn store_payload(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        payload: &[u8],
        mac: Option<&Tag>,
        meter: &mut Meter,
    ) -> Result<PoolRange, StoreError> {
        let total = payload.len() + mac.map_or(0, |_| Tag::LEN);
        let cost = ctx.cost.clone();
        let range = match self.pool.alloc(total) {
            Some(r) => r,
            None => {
                // Single batched ocall to enlarge the pre-allocated list (§4).
                ctx.enclave.ocall(meter, &cost);
                self.payload_mem.grow(ctx.config.pool_bytes);
                self.pool.grow(ctx.config.pool_bytes);
                self.pool.alloc(total).ok_or(StoreError::OversizedItem)?
            }
        };
        self.payload_mem.write(range.offset, payload);
        if let Some(mac) = mac {
            self.payload_mem
                .write(range.offset + payload.len(), mac.as_bytes());
        }
        meter.charge(Stage::ServerCritical, cost.server_time(cost.memcpy(total)));
        Ok(range)
    }

    pub(super) fn table_insert(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        key: Vec<u8>,
        meta: EntryMeta,
        meter: &mut Meter,
    ) {
        // First insert also touches the auxiliary heap structures once
        // (reply queues, pool directory — the paper's 0→1-key jump in
        // Table 1).
        if !self.misc_touched {
            self.misc_touched = true;
            let cost = ctx.cost.clone();
            ctx.enclave.touch_all(self.misc_region, meter, &cost);
        }
        let shard = self.table.shard_of(&key);
        let (old, stats) = self.table.insert_tracked(key, meta);
        if let Some(old) = old {
            // Overwrite: the old payload slot is released (and un-charged
            // from its owner's quota); the fresh K_operation in the new
            // entry revokes earlier readers (§3.3).
            if let ValueStorage::Untrusted(range) = old.storage {
                self.release_range(ctx.adversary, old.client_id, range);
            }
        }
        // Resize the modelled region before charging slot touches — the
        // insert may have grown the shard's partition, and the touched
        // slot indices refer to the *new* capacity.
        self.sync_table_region(ctx, shard, meter);
        self.charge_table_op(ctx, shard, &stats, meter);
    }

    // Charges probes + shard-local slot touches of one table operation
    // against the shard's modelled EPC region.
    pub(super) fn charge_table_op(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        shard: usize,
        stats: &precursor_storage::robinhood::OpStats,
        meter: &mut Meter,
    ) {
        let cost = ctx.cost.clone();
        meter.charge(Stage::Enclave, cost.server_time(cost.ht_op(stats.probes)));
        let slot_bytes = ctx.config.model_slot_bytes as u64;
        let region = self.table_regions[shard];
        for &slot in &stats.slots {
            ctx.enclave
                .touch(region, slot as u64 * slot_bytes, slot_bytes, meter, &cost);
        }
    }

    // After a shard's partition grows, its modelled region grows and the
    // rehash touches every page of the new partition.
    fn sync_table_region(&mut self, ctx: &mut ExecCtx<'_>, shard: usize, meter: &mut Meter) {
        let resizes = self.table.shard(shard).resizes();
        if resizes != self.table_resizes_seen[shard] {
            self.table_resizes_seen[shard] = resizes;
            let cost = ctx.cost.clone();
            let bytes = (self.table.shard(shard).capacity() * ctx.config.model_slot_bytes) as u64;
            let region = self.table_regions[shard];
            ctx.enclave.resize_region(region, bytes);
            ctx.enclave.touch_all(region, meter, &cost);
        }
    }
}

impl PrecursorServer {
    /// Verifies the integrity of a stored value against the enclave
    /// metadata, mimicking what a *client* would detect: recomputes the CMAC
    /// of the untrusted bytes under the enclave-held `K_operation`. Used by
    /// tests and the attack-demo example.
    pub fn audit_key(&self, key: &[u8]) -> Option<bool> {
        let entry = self.store.table.get(&key.to_vec())?;
        match self.config.mode {
            EncryptionMode::ClientSide => {
                let stored = match &entry.storage {
                    ValueStorage::Untrusted(range) => self
                        .store
                        .payload_mem
                        .read(range.offset, entry.payload_len + Tag::LEN),
                    ValueStorage::InEnclave(data) => data.clone(),
                };
                let (payload, mac_bytes) = stored.split_at(entry.payload_len);
                let mac = Tag::try_from(mac_bytes).expect("16 bytes");
                Some(cmac::verify(&cmac_key_of(&entry.k_op), payload, &mac))
            }
            EncryptionMode::ServerSide => {
                let ValueStorage::Untrusted(range) = &entry.storage else {
                    return Some(false);
                };
                let stored = self.store.payload_mem.read(range.offset, entry.payload_len);
                Some(
                    gcm::open(
                        &self.store.storage_key,
                        &precursor_crypto::Nonce12::from_counter(entry.storage_seq),
                        &[],
                        &stored,
                    )
                    .is_ok(),
                )
            }
        }
    }

    // --- snapshot/restore plumbing (see crate::snapshot) ---

    pub(crate) fn snapshot_body(&self) -> crate::snapshot::SnapshotBody {
        let mut entries = Vec::with_capacity(self.store.table.len());
        for (key, meta) in self.store.table.iter() {
            let stored_bytes = match &meta.storage {
                ValueStorage::Untrusted(range) => {
                    let len = match self.config.mode {
                        EncryptionMode::ClientSide => meta.payload_len + Tag::LEN,
                        EncryptionMode::ServerSide => meta.payload_len,
                    };
                    self.store.payload_mem.read(range.offset, len)
                }
                ValueStorage::InEnclave(data) => data.clone(),
            };
            entries.push(crate::snapshot::SnapshotEntry {
                key: key.clone(),
                k_op: meta.k_op.clone(),
                payload_nonce: meta.payload_nonce,
                storage_seq: meta.storage_seq,
                client_id: meta.client_id,
                payload_len: meta.payload_len,
                stored_bytes,
            });
        }
        crate::snapshot::SnapshotBody {
            mode: self.config.mode,
            storage_key: self.store.storage_key.clone(),
            storage_seq: self.store.storage_seq,
            mutation_seq: self.store.mutation_seq,
            state_digest: self.store.state_digest,
            entries,
            // Per-client at-most-once windows (and connection epochs) ride
            // along in the sealed blob, so a restarted server
            // re-acknowledges (rather than re-executes or rejects) requests
            // that were in flight at the crash, and reconnecting clients
            // get a strictly increasing epoch.
            sessions: self
                .sessions
                .list
                .iter()
                .map(|s| (s.expected_oid, s.last_status, s.epoch))
                .collect(),
            // Journal watermark: recovery replays only records past it.
            journal_epoch: self.journal_epoch().unwrap_or(0),
            journal_seq: self.journal_last_seq(),
            journal_chain: self
                .journal_chain()
                .unwrap_or_else(|| precursor_journal::genesis_chain(0)),
        }
    }

    pub(crate) fn restore_body(
        &mut self,
        body: crate::snapshot::SnapshotBody,
    ) -> Result<(), StoreError> {
        self.store.storage_key = body.storage_key;
        self.store.storage_seq = body.storage_seq;
        self.store.mutation_seq = body.mutation_seq;
        self.store.state_digest = body.state_digest;
        self.sessions.saved = body.sessions;
        for e in body.entries {
            self.install_entry(e)?;
        }
        Ok(())
    }

    // Installs one serialized entry into the store *without* bumping the
    // mutation evidence — the entry reproduces already-counted state.
    // Shared by snapshot restore and journal replay (which bumps the
    // evidence itself, in record order).
    pub(crate) fn install_entry(
        &mut self,
        e: crate::snapshot::SnapshotEntry,
    ) -> Result<(), StoreError> {
        let mut meter = Meter::new();
        let mut ctx = ExecCtx {
            enclave: &mut self.enclave,
            config: &self.config,
            cost: &self.cost,
            adversary: &mut self.adversary,
        };
        let storage = if ctx.config.mode == EncryptionMode::ClientSide
            && e.payload_len <= ctx.config.inline_value_max
        {
            ValueStorage::InEnclave(e.stored_bytes)
        } else {
            let range = match self.store.pool.alloc(e.stored_bytes.len()) {
                Some(r) => r,
                None => {
                    ctx.enclave.ocall(&mut meter, &ctx.cost.clone());
                    self.store.payload_mem.grow(ctx.config.pool_bytes);
                    self.store.pool.grow(ctx.config.pool_bytes);
                    self.store
                        .pool
                        .alloc(e.stored_bytes.len())
                        .ok_or(StoreError::OversizedItem)?
                }
            };
            self.store.payload_mem.write(range.offset, &e.stored_bytes);
            self.store
                .charge_range(ctx.adversary, e.client_id as usize, &range);
            ValueStorage::Untrusted(range)
        };
        self.store.table_insert(
            &mut ctx,
            e.key,
            EntryMeta {
                k_op: e.k_op,
                payload_nonce: e.payload_nonce,
                storage_seq: e.storage_seq,
                client_id: e.client_id,
                storage,
                payload_len: e.payload_len,
            },
            &mut meter,
        );
        Ok(())
    }

    // Serializes the current stored state of `key` (enclave metadata plus
    // the untrusted bytes) — the payload of a journal `Put` record, read
    // right after the put applied.
    pub(crate) fn export_entry(&self, key: &[u8]) -> Option<crate::snapshot::SnapshotEntry> {
        let meta = self.store.table.get(&key.to_vec())?;
        let stored_bytes = match &meta.storage {
            ValueStorage::Untrusted(range) => {
                let len = match self.config.mode {
                    EncryptionMode::ClientSide => meta.payload_len + Tag::LEN,
                    EncryptionMode::ServerSide => meta.payload_len,
                };
                self.store.payload_mem.read(range.offset, len)
            }
            ValueStorage::InEnclave(data) => data.clone(),
        };
        Some(crate::snapshot::SnapshotEntry {
            key: key.to_vec(),
            k_op: meta.k_op.clone(),
            payload_nonce: meta.payload_nonce,
            storage_seq: meta.storage_seq,
            client_id: meta.client_id,
            payload_len: meta.payload_len,
            stored_bytes,
        })
    }

    /// Every key currently stored, sorted. Used by cluster migration to
    /// enumerate the keys of a range (and by tests as an oracle); sorting
    /// keeps the enumeration independent of table iteration order.
    pub fn live_keys(&self) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = self.store.table.iter().map(|(k, _)| k.clone()).collect();
        keys.sort_unstable();
        keys
    }

    /// Tamper hook for security tests: flips a bit of the *untrusted* stored
    /// payload of `key`, as a rogue administrator with physical/DMA access
    /// could (§2.3). Returns `false` if the key does not exist.
    pub fn corrupt_stored_payload(&mut self, key: &[u8]) -> bool {
        let Some(entry) = self.store.table.get(&key.to_vec()) else {
            return false;
        };
        match &entry.storage {
            ValueStorage::Untrusted(range) => {
                let offset = range.offset;
                self.store.payload_mem.with_mut(|buf| buf[offset] ^= 0x01);
                true
            }
            // In-enclave values are outside the attacker's reach — even a
            // rogue admin cannot touch EPC memory.
            ValueStorage::InEnclave(_) => false,
        }
    }
}
