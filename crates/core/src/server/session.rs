//! Session stage: client admission, reconnection, revocation, and the
//! fault/adversary installers (attack accounting).
//!
//! Owns [`SessionStage`] — the trusted per-client session windows
//! (`expected_oid`, `last_status`, reply MAC chain), the sealed-snapshot
//! session saves, the attestation service, and the modelled enclave region
//! holding per-client trusted state.

use precursor_crypto::chain::MacChain;
use precursor_crypto::keys::Key128;
use precursor_rdma::adversary::{AdversaryInjector, AdversaryPlan, AttackClass, MountedAttack};
use precursor_rdma::faults::{FaultInjector, FaultPlan, InjectedFault};
use precursor_sgx::attest::{derive_chain_key, AttestationService};
use precursor_sgx::enclave::RegionId;
use precursor_sim::meter::Meter;

use crate::error::StoreError;
use crate::wire::{chain_context, Opcode, Status};

use super::exec::ValueStorage;
use super::{lock_faults, ClientBundle, PrecursorServer};

// Trusted per-client session state (expected oid per Algorithm 2, plus the
// at-most-once window: the status of the last executed operation, so a
// retransmission of it can be re-acknowledged without re-execution).
#[derive(Debug)]
pub(super) struct Session {
    pub(super) session_key: Key128,
    pub(super) expected_oid: u64,
    pub(super) reply_seq: u64,
    pub(super) active: bool,
    pub(super) last_status: Status,
    /// Connection epoch (see [`ClientBundle::epoch`]).
    pub(super) epoch: u32,
    /// Reply MAC chain, advanced once per sealed reply in `reply_seq`
    /// order; its tag rides in every reply control.
    pub(super) chain: MacChain,
}

// Session-stage state: every trusted per-client window plus the platform
// attestation service.
#[derive(Debug)]
pub(super) struct SessionStage {
    pub(super) list: Vec<Session>,
    // session windows recovered from a sealed snapshot, indexed by
    // client_id; consumed by reconnect_client after a crash-restart
    pub(super) saved: Vec<(u64, Status, u32)>,
    pub(super) attestation: AttestationService,
    // modelled enclave region holding per-client trusted state (oid slots)
    pub(super) client_region: RegionId,
}

impl PrecursorServer {
    /// Installs a deterministic fault plan on the server's transport. Must
    /// be called **before** clients connect: only queue pairs created
    /// afterwards flow through the injector.
    pub fn set_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        self.faults = Some(FaultInjector::shared(plan, seed));
    }

    /// Number of faults injected so far (0 without a fault plan).
    pub fn injected_faults(&self) -> usize {
        self.faults
            .as_ref()
            .map_or(0, |f| lock_faults(f).injected())
    }

    /// A copy of the injector's audit log (empty without a fault plan).
    pub fn fault_log(&self) -> Vec<InjectedFault> {
        self.faults
            .as_ref()
            .map_or_else(Vec::new, |f| lock_faults(f).log().to_vec())
    }

    /// Installs a deterministic Byzantine-host plan: the host software now
    /// tampers with untrusted payload bytes, replays stale reply records,
    /// reorders and duplicates ring records according to `plan`, seeded from
    /// `seed`. Every mounted attack is recorded in
    /// [`adversary_log`](Self::adversary_log) so tests can assert each one
    /// was *detected* client-side.
    pub fn set_adversary_plan(&mut self, plan: AdversaryPlan, seed: u64) {
        self.adversary = Some(AdversaryInjector::new(plan, seed));
    }

    /// Number of attacks mounted so far (0 without an adversary plan).
    pub fn mounted_attacks(&self) -> usize {
        self.adversary.as_ref().map_or(0, |a| a.mounted())
    }

    /// A copy of the adversary's audit log (empty without a plan).
    pub fn adversary_log(&self) -> Vec<MountedAttack> {
        self.adversary
            .as_ref()
            .map_or_else(Vec::new, |a| a.log().to_vec())
    }

    /// Records a harness-staged attack (rollback via a stale snapshot, fork
    /// via a cloned platform) in the adversary audit log, so all attack
    /// classes flow through one log. No-op without an adversary plan.
    pub fn note_attack(&mut self, class: AttackClass, client: Option<u32>) {
        if let Some(adv) = &mut self.adversary {
            adv.note_attack(class, client);
        }
    }

    /// Admits a new client: performs the modelled attestation handshake
    /// (§3.6), allocates its rings, and returns the bundle the client needs.
    /// This is one of the paper's three ecalls ("add a new client", §4).
    ///
    /// # Errors
    ///
    /// [`StoreError::TooManyClients`] beyond the configured limit;
    /// [`StoreError::AttestationFailed`] if the handshake fails.
    pub fn add_client(&mut self, client_nonce: [u8; 16]) -> Result<ClientBundle, StoreError> {
        if self.ingress.ports.len() >= self.config.max_clients {
            return Err(StoreError::TooManyClients);
        }
        let client_id = self.ingress.ports.len() as u32;

        // The "add a new client" ecall.
        let mut meter = Meter::new();
        let session_key = self.establish(client_nonce, &mut meter)?;
        let (port, bundle) = self.provision_port(client_id, &session_key);

        let epoch = 1;
        let chain = MacChain::new(
            &derive_chain_key(&session_key, epoch),
            &chain_context(client_id, epoch),
        );
        self.sessions.list.push(Session {
            session_key,
            expected_oid: 1,
            reply_seq: 1,
            active: true,
            last_status: Status::Ok,
            epoch,
            chain,
        });
        self.ingress.ports.push(Some(port));
        self.store.pool_used.push(0);
        // Per-client trusted state (oid slot) lives in the client region.
        self.enclave.touch(
            self.sessions.client_region,
            client_id as u64 * 64,
            64,
            &mut meter,
            &self.cost.clone(),
        );
        // Journal the admitted session's trusted window so failover
        // reconstructs the at-most-once state.
        self.journal_session(client_id);

        Ok(bundle)
    }

    /// Re-admits a known client after a transport failure or a server
    /// restart: runs the attestation handshake again (fresh session key and
    /// rings) while the trusted per-client window — `expected_oid` and the
    /// last operation's status — is *preserved*, either from the live
    /// session or from the state recovered out of a sealed snapshot. An
    /// operation that executed right before the failure is therefore
    /// re-acknowledged, never re-applied.
    ///
    /// After a crash-restart, clients must reconnect in ascending
    /// `client_id` order (ids index the port table).
    ///
    /// # Errors
    ///
    /// [`StoreError::SessionLost`] for an unknown client id;
    /// [`StoreError::AttestationFailed`] if the handshake fails.
    pub fn reconnect_client(
        &mut self,
        client_id: u32,
        client_nonce: [u8; 16],
    ) -> Result<ClientBundle, StoreError> {
        let idx = client_id as usize;
        let resumed = if idx < self.sessions.list.len() {
            (
                self.sessions.list[idx].expected_oid,
                self.sessions.list[idx].last_status,
                self.sessions.list[idx].epoch,
            )
        } else if idx == self.sessions.list.len() && idx < self.sessions.saved.len() {
            self.sessions.saved[idx]
        } else {
            return Err(StoreError::SessionLost);
        };

        let mut meter = Meter::new();
        let session_key = self.establish(client_nonce, &mut meter)?;
        let (port, mut bundle) = self.provision_port(client_id, &session_key);
        bundle.expected_oid = resumed.0;
        // Fresh connection epoch: the reply MAC chain re-keys, so replies
        // sealed in any earlier epoch can never verify again.
        let epoch = resumed.2 + 1;
        bundle.epoch = epoch;
        let chain = MacChain::new(
            &derive_chain_key(&session_key, epoch),
            &chain_context(client_id, epoch),
        );
        let session = Session {
            session_key,
            expected_oid: resumed.0,
            reply_seq: 1,
            active: true,
            last_status: resumed.1,
            epoch,
            chain,
        };
        // A Reorder attack must not hold a record across sessions.
        if let Some(adv) = &mut self.adversary {
            adv.release_held(client_id);
        }
        if idx < self.sessions.list.len() {
            self.sessions.list[idx] = session;
            self.ingress.ports[idx] = Some(port);
        } else {
            self.sessions.list.push(session);
            self.ingress.ports.push(Some(port));
        }
        if self.store.pool_used.len() <= idx {
            self.store.pool_used.resize(idx + 1, 0);
        }
        self.enclave.touch(
            self.sessions.client_region,
            client_id as u64 * 64,
            64,
            &mut meter,
            &self.cost.clone(),
        );
        self.journal_session(client_id);
        Ok(bundle)
    }

    // The attestation half of client admission: one modelled ecall plus the
    // session-key handshake (§3.6).
    fn establish(
        &mut self,
        client_nonce: [u8; 16],
        meter: &mut Meter,
    ) -> Result<Key128, StoreError> {
        self.enclave.ecall(meter, &self.cost);
        let mut enclave_nonce = [0u8; 16];
        self.rng.fill_bytes(&mut enclave_nonce);
        self.sessions
            .attestation
            .establish_session(
                &self.enclave,
                self.enclave.measurement(),
                client_nonce,
                enclave_nonce,
            )
            .map_err(|_| StoreError::AttestationFailed)
    }

    /// Revokes a client: its QP transitions to the error state (§3.9), its
    /// requests are no longer processed, and every resource it held is
    /// reclaimed — its stored entries are evicted (pool slots freed), its
    /// rings and registered memory are dropped, and its quota charge is
    /// zeroed. The client id itself is retired, never recycled; the client
    /// may later [`reconnect_client`](Self::reconnect_client).
    pub fn revoke_client(&mut self, client_id: u32) {
        let idx = client_id as usize;
        if let Some(Some(port)) = self.ingress.ports.get(idx) {
            port.qp.set_error();
        }
        if let Some(s) = self.sessions.list.get_mut(idx) {
            s.active = false;
        }
        // Evict the revoked client's entries: its data does not outlive the
        // session, and the pool slots return to the free lists.
        let keys: Vec<Vec<u8>> = self
            .store
            .table
            .iter()
            .filter(|(_, meta)| meta.client_id == client_id)
            .map(|(key, _)| key.clone())
            .collect();
        for key in keys {
            let (removed, _stats) = self.store.table.remove_tracked(&key);
            if let Some(entry) = removed {
                if let ValueStorage::Untrusted(range) = entry.storage {
                    self.store
                        .release_range(&mut self.adversary, entry.client_id, range);
                }
                self.store.bump_mutation(Opcode::Delete, &key);
                self.journal_evict(&key);
            }
        }
        if let Some(adv) = &mut self.adversary {
            adv.release_held(client_id);
        }
        // Drop the rings, MRs and QP end (frees the untrusted footprint).
        if let Some(slot) = self.ingress.ports.get_mut(idx) {
            *slot = None;
        }
    }
}
