//! The Precursor server: untrusted plumbing + trusted request processing.
//!
//! The server side is "subdivided into two parts, the trusted and the
//! untrusted environment" (§3.5). Here:
//!
//! * **Untrusted**: per-client request rings (written remotely by one-sided
//!   RDMA WRITE), per-client reply writing, the pre-allocated payload pool,
//!   and the credit write-backs.
//! * **Trusted** (accounted through the [`Enclave`] model): the Robin Hood
//!   hash table of `(key → K_operation, pointer)` entries, the per-client
//!   expected-`oid` array, control-segment decryption and reply sealing —
//!   Algorithm 2 of the paper.
//!
//! Each processed request produces an [`OpReport`] whose [`Meter`] carries
//! the virtual cost of every step; the YCSB driver replays those charges
//! through contended resources.
//!
//! The request path is decomposed into explicit pipeline stages, one
//! private module per stage (DESIGN.md "module map & pipeline stages"):
//!
//! * `session` — add/reconnect/revoke, quotas, attack accounting
//!   (owns `SessionStage`);
//! * `ingress` — ring polling plumbing, credit and batched reply
//!   WRITEs (owns `Ingress`);
//! * `pipeline` — the sweep drivers gluing the stages together
//!   (single-shard and sharded three-phase sweeps, shard routing +
//!   handoff);
//! * `exec` — per-opcode enclave execution against the Robin Hood
//!   shards (owns `StoreExec`);
//! * `seal` — reply_seq / MAC-chain / last_status sealing in
//!   per-client pop order.
//!
//! Stages communicate through narrow structs (`Validated`, `ReplyPlan`,
//! `PendingAction`, `StoreEvidence`, `ExecCtx`) rather than through one
//! shared mega-`&mut self` surface; `PrecursorServer` itself is a thin
//! facade that owns the stage states and re-exports the public API.

mod durability;
mod exec;
mod ingress;
mod pipeline;
mod seal;
mod session;

pub use durability::{CompactOutcome, RecoveryReport};

use std::sync::{Arc, Mutex};

use precursor_crypto::keys::{Key128, Key256};
use precursor_obs::{MetricsRegistry, Tracer};
use precursor_rdma::adversary::AdversaryInjector;
use precursor_rdma::faults::FaultInjector;
use precursor_rdma::mr::{Memory, RemoteKey};
use precursor_rdma::qp::QueuePair;
use precursor_sgx::attest::AttestationService;
use precursor_sgx::enclave::{Enclave, RegionId};
use precursor_sim::meter::Meter;
use precursor_sim::rng::SimRng;
use precursor_sim::time::Nanos;
use precursor_sim::CostModel;
use precursor_storage::pool::SlabPool;
use precursor_storage::robinhood::ShardedRobinHoodMap;

use crate::config::{Config, EncryptionMode};
use crate::wire::{Opcode, Status};

use exec::StoreExec;
use ingress::Ingress;
use session::SessionStage;

/// Per-operation outcome + cost accounting, consumed by the benchmark
/// driver.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Client that issued the operation.
    pub client_id: u32,
    /// Operation kind.
    pub opcode: Opcode,
    /// Outcome.
    pub status: Status,
    /// Payload bytes involved (request payload for puts, reply payload for
    /// gets).
    pub value_len: usize,
    /// Trusted shard that executed the operation — for replies produced
    /// without execution (errors, replays, retransmits), the popping
    /// worker's shard. Always `0` in single-shard mode.
    pub shard: u32,
    /// Cost charges accumulated while processing this request server-side.
    pub meter: Meter,
}

/// What the server hands a connecting client after attestation (§3.6): the
/// session key, ring locations/rkeys, and the client's end of the QP.
#[derive(Debug)]
pub struct ClientBundle {
    /// Assigned client id.
    pub client_id: u32,
    /// The shared session key established during attestation.
    pub session_key: Key128,
    /// Client end of the reliable connection.
    pub qp: QueuePair,
    /// rkey of the server-side request ring (client WRITEs requests here).
    pub request_ring_rkey: RemoteKey,
    /// Client-local reply ring memory (server WRITEs replies here).
    pub reply_ring: Memory,
    /// Client-local credit word (server WRITEs its consumed counter here).
    pub credit_word: Memory,
    /// rkey of the server-side reply-credit word (client WRITEs its reply
    /// consumption counter here).
    pub reply_credit_rkey: RemoteKey,
    /// Ring capacity in bytes (both rings).
    pub ring_bytes: usize,
    /// Payload encryption mode the server runs in.
    pub mode: EncryptionMode,
    /// The enclave's expected oid for this session. `1` for a fresh
    /// session; on reconnect it lets the client resynchronise its oid
    /// counter with the enclave window (an operation abandoned after
    /// [`StoreError::Timeout`](crate::StoreError::Timeout) may or may not
    /// have executed, leaving the counters one apart otherwise).
    pub expected_oid: u64,
    /// Connection epoch of this session: `1` for a fresh session, bumped by
    /// every [`PrecursorServer::reconnect_client`]. The reply MAC chain is
    /// keyed per-epoch, and every reply control echoes the epoch, so a
    /// stale reply from an earlier connection can never verify.
    pub epoch: u32,
}

/// The Precursor key-value store server.
///
/// See the [crate docs](crate) for a quickstart.
#[derive(Debug)]
pub struct PrecursorServer {
    config: Config,
    cost: CostModel,
    rng: SimRng,

    // trusted execution environment shared by every stage
    enclave: Enclave,
    // modelled enclave region holding code + static data
    static_region: RegionId,

    // pipeline stage states (one struct per stage module)
    sessions: SessionStage,
    store: StoreExec,
    ingress: Ingress,

    // durability stage (sealed journal + group-commit reply gate); None
    // until a journal is attached
    durability: Option<durability::Durability>,
    // staged-recovery catch-up queue: Some while a promoted replica still
    // has journal records to apply in the background (reads served from
    // the applied prefix, mutations answered Busy); None otherwise
    catchup: Option<durability::CatchupState>,

    // cluster routing view: this node's id plus the placement ring it
    // believes authoritative; None for standalone servers, in which case
    // the NotMine gate never fires and the pipeline is byte-identical to
    // the pre-cluster behaviour
    routing: Option<crate::cluster::NodeRouting>,

    // fault injection (tests/chaos harnesses); None = clean transport
    faults: Option<Arc<Mutex<FaultInjector>>>,
    // Byzantine-host injection (tests); None = honest host software
    adversary: Option<AdversaryInjector>,

    // observability: the per-stage metric taps feed this registry on
    // every finished op; the tracer is a no-op unless enabled. Neither
    // touches the RNG or any meter, so seeded runs digest identically
    // with or without them.
    obs: MetricsRegistry,
    tracer: Tracer,
}

impl PrecursorServer {
    /// Creates a server with the given configuration and cost model. The
    /// enclave is initialized (static data + the initial subset of the hash
    /// table are touched — the paper's 52-page baseline working set, §5.4).
    pub fn new(config: Config, cost: &CostModel) -> PrecursorServer {
        let mut rng = SimRng::seed_from(0x9e3779b97f4a7c15);
        let attestation = AttestationService::new(&mut rng);
        let mut enclave = Enclave::new(cost);

        let static_region = enclave.alloc_region("static", 8 * cost.page_bytes);
        let shards = config.shards.max(1);
        let table = ShardedRobinHoodMap::with_capacity(shards, config.initial_table_slots);
        let table_regions: Vec<RegionId> = (0..shards)
            .map(|s| {
                enclave.alloc_region(
                    "hash-table",
                    (table.shard(s).capacity() * config.model_slot_bytes) as u64,
                )
            })
            .collect();
        let misc_region = enclave.alloc_region("heap-misc", 13 * cost.page_bytes);
        let client_region =
            enclave.alloc_region("client-state", (config.max_clients * 64).max(64) as u64);

        // Enclave initialization: code/data plus the initial table subset.
        let mut init_meter = Meter::new();
        enclave.touch_all(static_region, &mut init_meter, cost);
        for &region in &table_regions {
            enclave.touch_all(region, &mut init_meter, cost);
        }

        let storage_key = Key128::generate(&mut rng);
        PrecursorServer {
            config: config.clone(),
            cost: cost.clone(),
            rng,
            enclave,
            static_region,
            sessions: SessionStage {
                list: Vec::new(),
                saved: Vec::new(),
                attestation,
                client_region,
            },
            store: StoreExec {
                table,
                storage_key,
                storage_seq: 0,
                mutation_seq: 0,
                state_digest: [0u8; 16],
                table_regions,
                misc_region,
                misc_touched: false,
                table_resizes_seen: vec![0; shards],
                payload_mem: Memory::zeroed(config.pool_bytes),
                pool: SlabPool::new(config.pool_bytes),
                pool_used: Vec::new(),
            },
            ingress: Ingress {
                ports: Vec::new(),
                reports: std::collections::VecDeque::new(),
                reports_dropped: 0,
                rr_cursor: 0,
                rr_cursors: vec![0; shards],
                polls: 0,
                credit_writes: 0,
                handoffs: 0,
                budgets: Vec::new(),
                budget_adjustments: 0,
                credits_elided: 0,
                arena: Vec::new(),
                dirty_board: precursor_rdma::WriteBoard::new(),
                credit_pending: std::collections::BTreeSet::new(),
                rings_swept: 0,
            },
            durability: None,
            catchup: None,
            routing: None,
            faults: None,
            adversary: None,
            obs: MetricsRegistry::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// The server-side metrics registry, fed by the pipeline's per-stage
    /// taps: op/status counters, `stage.*_ns` histograms from every
    /// [`OpReport`]'s meter, and ingress/sweep counters.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs
    }

    /// Enables the structured-event tracer, retaining the most recent
    /// `cap` events. Tracing is deterministic (events are stamped with
    /// the sweep counter as logical time) and does not perturb any
    /// digested observable.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracer = Tracer::enabled(cap);
    }

    /// The structured-event tracer (disabled unless
    /// [`enable_tracing`](Self::enable_tracing) was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    // Records one pipeline trace event stamped with the sweep counter —
    // the server's deterministic logical clock (it has no virtual
    // wall-clock of its own).
    pub(super) fn trace(&mut self, stage: &'static str, event: &'static str, a: u64, b: u64) {
        self.tracer
            .record(Nanos(self.ingress.polls), stage, event, a, b);
    }

    /// [`OpReport`]s dropped because the buffer cap
    /// ([`Config::max_buffered_reports`]) was reached before
    /// [`take_reports`](Self::take_reports) drained them.
    pub fn reports_dropped(&self) -> u64 {
        self.ingress.reports_dropped
    }

    /// Untrusted-pool bytes (slot capacities) currently charged to
    /// `client_id` — what [`Config::pool_quota_bytes`] bounds.
    pub fn pool_usage(&self, client_id: u32) -> usize {
        self.store
            .pool_used
            .get(client_id as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The store-mutation sequence number (bumped on every applied put,
    /// delete, and revocation eviction). Carried in every reply control.
    pub fn mutation_seq(&self) -> u64 {
        self.store.mutation_seq
    }

    /// The running digest over all applied mutations (fork evidence).
    pub fn state_digest(&self) -> [u8; 16] {
        self.store.state_digest
    }

    /// The configured cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.store.table.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.table.len() == 0
    }

    /// Number of connected (non-revoked) clients.
    pub fn client_count(&self) -> usize {
        self.ingress.ports.iter().filter(|p| p.is_some()).count()
    }

    /// The attestation service of the platform (clients verify quotes
    /// against it).
    pub fn attestation(&self) -> &AttestationService {
        &self.sessions.attestation
    }

    /// The enclave's measurement, which clients pin.
    pub fn measurement(&self) -> [u8; 32] {
        self.enclave.measurement()
    }

    /// The last writer of `key`, if present — the 4-byte client identifier
    /// the paper keeps in the enclave hash table (§4).
    pub fn owner_of(&self, key: &[u8]) -> Option<u32> {
        self.store.table.get(&key.to_vec()).map(|e| e.client_id)
    }

    /// The modelled enclave heap regions and their sizes in bytes
    /// (diagnostics for the EPC analysis of §5.4). With sharding there is
    /// one `hash-table` region per shard.
    pub fn enclave_regions(&self) -> Vec<(&'static str, u64)> {
        std::iter::once(self.static_region)
            .chain(self.store.table_regions.iter().copied())
            .chain([self.store.misc_region, self.sessions.client_region])
            .map(|r| (self.enclave.region_name(r), self.enclave.region_bytes(r)))
            .collect()
    }

    /// Number of trusted polling shards ([`Config::shards`]).
    pub fn shards(&self) -> usize {
        self.config.shards.max(1)
    }

    /// Credit write-backs posted so far. Sweeps that consumed nothing from
    /// a client's ring skip the WRITE (the credit word is unchanged).
    pub fn credit_writes(&self) -> u64 {
        self.ingress.credit_writes
    }

    /// Requests handed across shards so far: popped by a polling worker
    /// whose shard did not own the key (sharded mode only).
    pub fn handoffs(&self) -> u64 {
        self.ingress.handoffs
    }

    /// Ring visits performed by poll sweeps so far (all modes). With
    /// [`Config::dirty_ring_sweep`] on this stays proportional to the
    /// *dirty* rings, not the connected clients — it is what the
    /// closed-loop driver's cost model charges the per-ring scan cost
    /// against.
    pub fn rings_swept(&self) -> u64 {
        self.ingress.rings_swept
    }

    /// Clients currently owed a deferred credit write-back — the set
    /// dirty-mode sweeps keep visiting until the flush (diagnostic
    /// surface for the [`Config::dirty_ring_sweep`] liveness rule).
    pub fn credit_pending(&self) -> usize {
        self.ingress.credit_pending.len()
    }

    /// Credit WRITEs elided so far under the
    /// [`Config::lazy_credit_bytes`] threshold (fast path).
    pub fn credits_elided(&self) -> u64 {
        self.ingress.credits_elided
    }

    /// Adaptive poll-budget changes applied so far (fast path;
    /// [`Config::adaptive_poll_budget`]).
    pub fn budget_adjustments(&self) -> u64 {
        self.ingress.budget_adjustments
    }

    /// The current adaptive poll budget of `client_id`, or the static
    /// budget when adaptation is off (test/diagnostic surface for the
    /// controller's `[min, max]` bound).
    pub fn poll_budget_of(&self, client_id: u32) -> usize {
        if !self.config.adaptive_poll_budget {
            return self.config.poll_budget_per_client;
        }
        self.ingress
            .budgets
            .get(client_id as usize)
            .copied()
            .unwrap_or_else(|| {
                if self.config.poll_budget_per_client == 0 {
                    self.config.poll_budget_max
                } else {
                    self.config.poll_budget_per_client.clamp(
                        self.config.poll_budget_min.max(1),
                        self.config.poll_budget_max,
                    )
                }
            })
    }

    /// An sgx-perf style report of the enclave (Table 1).
    pub fn sgx_report(&self) -> precursor_sgx::SgxPerfReport {
        self.enclave.report()
    }

    /// Pool statistics (ocall growth events, bytes in use).
    pub fn pool_stats(&self) -> precursor_storage::pool::PoolStats {
        self.store.pool.stats()
    }

    // --- cluster routing (see crate::cluster) ---

    /// Installs (or replaces) this node's routing view: its node id and the
    /// placement ring it treats as authoritative. Requests for keys the
    /// ring assigns elsewhere are answered with a sealed
    /// [`Status::NotMine`] redirect instead of executing. Standalone
    /// servers (no view installed) never redirect.
    pub fn install_routing(&mut self, node: u16, ring: crate::cluster::PlacementRing) {
        self.routing = Some(crate::cluster::NodeRouting { node, ring });
    }

    /// This node's installed routing view as `(node, ring_epoch)`, if any.
    pub fn routing_view(&self) -> Option<(u16, u64)> {
        self.routing.as_ref().map(|r| (r.node, r.ring.epoch()))
    }

    /// Whether this node's installed routing view claims ownership of
    /// `key`. Standalone servers own everything.
    pub fn owns_key(&self, key: &[u8]) -> bool {
        match &self.routing {
            Some(r) => r.ring.owner_of(key) == r.node,
            None => true,
        }
    }

    // The ownership gate, checked by the pipeline before execution (after
    // the catch-up gate): a key the ring assigns to another node is
    // answered with a sealed NotMine redirect carrying the authoritative
    // owner hint. The redirect consumes the request's oid (the at-most-once
    // window advances; the client's retry at the real owner is a fresh oid
    // on an independent per-node session) and is never journalled
    // (journal_mutation requires Status::Ok).
    fn routing_gate(&mut self, key: &[u8], oid: u64) -> Option<(Status, usize, exec::ReplyPlan)> {
        let routing = self.routing.as_ref()?;
        let owner = routing.ring.owner_of(key);
        if owner == routing.node {
            return None;
        }
        let hint = crate::cluster::encode_owner_hint(routing.ring.epoch(), owner);
        self.obs.inc("server.not_mine_redirects", 1);
        Some((Status::NotMine, 0, exec::ReplyPlan::NotMine { oid, hint }))
    }

    // --- snapshot/restore plumbing (see crate::snapshot) ---

    pub(crate) fn sealing_key(&self) -> Key128 {
        self.sessions.attestation.sealing_key(&self.enclave)
    }

    pub(crate) fn seal_with_rng(&mut self, key: &Key128, version: u64, body: &[u8]) -> Vec<u8> {
        precursor_sgx::sealing::seal(key, version, body, &mut self.rng)
    }
}

// Backend-neutral metric names for op kinds and outcomes (ShieldStore's
// taps use the same namespace, which is what makes the cross-backend
// metrics-equivalence tests possible).
pub(super) fn op_metric(op: Opcode) -> &'static str {
    match op {
        Opcode::Put => "ops.put",
        Opcode::Get => "ops.get",
        Opcode::Delete => "ops.delete",
    }
}

pub(super) fn status_metric(status: Status) -> &'static str {
    match status {
        Status::Ok => "status.ok",
        Status::NotFound => "status.not_found",
        Status::Replay => "status.replay",
        Status::Error => "status.error",
        Status::Busy => "status.busy",
        Status::NotMine => "status.not_mine",
    }
}

// Poison-tolerant lock on the shared fault injector (mirrors the rdma
// crate's internal helper).
fn lock_faults(f: &Arc<Mutex<FaultInjector>>) -> std::sync::MutexGuard<'_, FaultInjector> {
    f.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Derives the AES-128 key used for CMAC from the 256-bit `K_operation`
/// (the SGX SDK's `sgx_rijndael128_cmac_msg` takes a 128-bit key; the paper
/// MACs with the operation key, so we use its first half — both sides agree).
pub(crate) fn cmac_key_of(k_op: &Key256) -> Key128 {
    let mut k = [0u8; 16];
    k.copy_from_slice(&k_op.as_bytes()[..16]);
    Key128::from_bytes(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreError;

    #[test]
    fn server_initial_working_set_is_the_table_subset() {
        let cost = CostModel::default();
        let server = PrecursorServer::new(Config::default(), &cost);
        let report = server.sgx_report();
        // 8 static pages + ceil(2048 slots × 88 B / 4 KiB) = 8 + 44 = 52 —
        // Table 1's 0-key row.
        assert_eq!(report.working_set_pages, 52);
    }

    #[test]
    fn add_client_assigns_ids_and_respects_limit() {
        let cost = CostModel::default();
        let config = Config {
            max_clients: 2,
            ..Config::default()
        };
        let mut server = PrecursorServer::new(config, &cost);
        let a = server.add_client([1; 16]).unwrap();
        let b = server.add_client([2; 16]).unwrap();
        assert_eq!(a.client_id, 0);
        assert_eq!(b.client_id, 1);
        assert_eq!(
            server.add_client([3; 16]).unwrap_err(),
            StoreError::TooManyClients
        );
    }

    #[test]
    fn sessions_have_distinct_keys() {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::default(), &cost);
        let a = server.add_client([1; 16]).unwrap();
        let b = server.add_client([2; 16]).unwrap();
        assert_ne!(a.session_key, b.session_key);
    }

    #[test]
    fn poll_on_idle_server_is_a_noop() {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::default(), &cost);
        server.add_client([1; 16]).unwrap();
        assert_eq!(server.poll(), 0);
        assert!(server.take_reports().is_empty());
    }

    #[test]
    fn idle_sweeps_post_no_credit_writes() {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::default(), &cost);
        let mut client = crate::PrecursorClient::connect(&mut server, 7).unwrap();

        // A connected-but-idle client earns no credit write-backs: nothing
        // was consumed, so the credit word is already correct.
        for _ in 0..10 {
            server.poll();
        }
        assert_eq!(server.credit_writes(), 0, "idle sweep must not post");

        // One executed op advances the consumer → exactly one credit WRITE.
        client.put_sync(&mut server, b"k", b"v").unwrap();
        let after_op = server.credit_writes();
        assert!(after_op >= 1);

        // Back to idle: the count must not move again.
        for _ in 0..10 {
            server.poll();
        }
        assert_eq!(server.credit_writes(), after_op);
    }

    #[test]
    fn sharded_server_round_trips_and_reports_shards() {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::sharded(4), &cost);
        assert_eq!(server.shards(), 4);
        let mut clients: Vec<_> = (0..3)
            .map(|i| crate::PrecursorClient::connect(&mut server, 100 + i).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            for k in 0..8u8 {
                let key = [i as u8, k];
                c.put_sync(&mut server, &key, &[k; 24]).unwrap();
                assert_eq!(c.get_sync(&mut server, &key).unwrap(), vec![k; 24]);
            }
        }
        clients[0].delete_sync(&mut server, &[0u8, 0]).unwrap();
        assert!(clients[0].get_sync(&mut server, &[0u8, 0]).is_err());
        // Reports carry a shard id inside range, and a 3-client workload
        // over 4 shards with random keys crosses shards at least once.
        let reports = server.take_reports();
        assert!(!reports.is_empty());
        assert!(reports.iter().all(|r| r.shard < 4));
        assert!(server.handoffs() > 0, "foreign-shard keys must hand off");
    }

    #[test]
    fn single_shard_mode_reports_shard_zero_and_never_hands_off() {
        let cost = CostModel::default();
        let mut server = PrecursorServer::new(Config::default(), &cost);
        let mut client = crate::PrecursorClient::connect(&mut server, 9).unwrap();
        for k in 0..16u8 {
            client.put_sync(&mut server, &[k], &[k; 16]).unwrap();
        }
        assert!(server.take_reports().iter().all(|r| r.shard == 0));
        assert_eq!(server.handoffs(), 0);
    }
}
