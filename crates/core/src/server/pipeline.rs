//! Pipeline stage: the sweep drivers gluing the stages together.
//!
//! [`PrecursorServer::poll`] dispatches to the single-shard sweep (the
//! pre-sharding code path, kept operation-for-operation identical so
//! seeded runs reproduce) or the sharded three-phase sweep (§3.8:
//! validate/route → per-shard execute → per-client in-order seal).
//! Validation — control decrypt plus the at-most-once window check — also
//! lives here: it is what decides a popped record's path through the
//! later stages ([`Validated`]).

use std::collections::VecDeque;

use precursor_sim::meter::{Meter, Stage};
use precursor_sim::time::Cycles;

use crate::config::EncryptionMode;
use crate::wire::{request_aad, Opcode, RequestControl, RequestFrame, Status};

use precursor_crypto::gcm;

use super::exec::{ExecCtx, ExecRequest, ReplyPlan};
use super::ingress::ReplyBatch;
use super::seal::{self, SealCtx};
use super::{OpReport, PrecursorServer};

// How a processed record is answered.
enum ReplyOut {
    /// Push a new reply record into the client's reply ring. `remember`
    /// marks replies of *executed* operations, which the at-most-once
    /// window may need to re-send.
    Fresh {
        reply: crate::wire::ReplyFrame,
        remember: bool,
    },
    /// Re-issue the stored last-reply WRITEs byte-for-byte.
    Retransmit,
}

// Outcome of validating one popped record — control decrypt plus the
// at-most-once window check — before anything executes or any reply is
// sealed. Splitting validation from execution and sealing lets the sharded
// poll execute foreign-shard requests on the shard owning their key while
// still sealing each client's replies in pop order (the `reply_seq` /
// MAC-chain contract requires per-client in-order sealing).
enum Validated {
    /// Answered without executing: malformed frame, off-window oid, or a
    /// cached acknowledgement from the at-most-once window.
    Reject {
        status: Status,
        opcode: Opcode,
        oid: u64,
        remember: bool,
    },
    /// Same-session retransmit: re-issue the stored reply WRITEs.
    Retransmit { status: Status, opcode: Opcode },
    /// In-window (or an idempotently re-executable read): run against the
    /// table partition owning the key.
    Execute {
        opcode: Opcode,
        control: RequestControl,
        frame: RequestFrame,
    },
}

// One popped record's deferred work in a sharded sweep: the meter its
// charges accumulate into, plus what remains to be done with it.
struct PendingAction {
    meter: Meter,
    kind: ActionKind,
}

enum ActionKind {
    /// Parked in its owning shard's execution queue (phase B).
    AwaitExec {
        opcode: Opcode,
        control: RequestControl,
        frame: RequestFrame,
    },
    /// Executed (or answered without execution): seal + post in pop order.
    Seal {
        status: Status,
        opcode: Opcode,
        value_len: usize,
        plan: ReplyPlan,
        remember: bool,
        /// Whether sealing updates the session's cached `last_status` —
        /// only *executed* operations refresh the at-most-once window.
        set_last: bool,
        shard: u32,
    },
    /// Same-session retransmit: re-issue the stored WRITEs.
    Retransmit { status: Status, opcode: Opcode },
}

impl PrecursorServer {
    /// One polling sweep of a trusted thread over all client rings (§3.8):
    /// consumes available requests, processes them, writes replies into the
    /// clients' reply rings with one-sided WRITEs, and periodically updates
    /// credits. Returns the number of requests processed.
    ///
    /// Each sweep starts from a rotating client (round-robin) and consumes
    /// at most [`Config::poll_budget_per_client`](crate::Config::poll_budget_per_client)
    /// records per client, so a flooding client cannot monopolize the
    /// trusted thread: its surplus requests simply wait in its own ring for
    /// later sweeps.
    pub fn poll(&mut self) -> usize {
        self.ingress.polls += 1;
        // A Byzantine host may flip a bit of a live untrusted payload
        // between sweeps (detected client-side by the payload CMAC).
        if let Some(adv) = &mut self.adversary {
            if let Some((offset, bit)) = adv.on_sweep() {
                self.store.payload_mem.with_mut(|buf| {
                    if offset < buf.len() {
                        buf[offset] ^= 1 << bit;
                    }
                });
            }
        }
        if self.ingress.ports.is_empty() {
            // Age-based group commits still tick over on idle sweeps.
            self.durability_sweep();
            return 0;
        }
        let processed = if self.config.shards <= 1 {
            self.poll_single()
        } else {
            self.poll_sharded()
        };
        self.durability_sweep();
        self.obs.inc("server.polls", 1);
        self.trace("pipeline", "sweep", self.ingress.polls, processed as u64);
        processed
    }

    // The single trusted polling thread (the pre-sharding code path, kept
    // operation-for-operation identical so seeded runs reproduce).
    fn poll_single(&mut self) -> usize {
        if self.config.dirty_ring_sweep {
            return self.poll_single_dirty();
        }
        let n = self.ingress.ports.len();
        let start = self.ingress.rr_cursor % n;
        self.ingress.rr_cursor = (start + 1) % n;
        let mut processed = 0;
        for step in 0..n {
            let idx = (start + step) % n;
            if self.ingress.ports[idx].is_none() || !self.sessions.list[idx].active {
                continue;
            }
            let (taken, _) = self.sweep_ring_once(idx);
            processed += taken;
        }
        processed
    }

    // Dirty-set variant of the single-shard sweep (`Config::
    // dirty_ring_sweep`): instead of scanning every connected ring, the
    // sweep visits only rings marked by a delivered client WRITE since the
    // last drain, plus clients owed a deferred credit write-back. The
    // per-client drain is the exact same body as the full scan.
    fn poll_single_dirty(&mut self) -> usize {
        let n = self.ingress.ports.len();
        let start = self.ingress.rr_cursor % n;
        self.ingress.rr_cursor = (start + 1) % n;
        let mut due = self.dirty_due();
        // Visit in index order starting from the rotating cursor — the
        // same fairness rotation as the full scan.
        due.sort_unstable_by_key(|&idx| (idx < start, idx));
        let mut processed = 0;
        for idx in due {
            if self.ingress.ports[idx].is_none() || !self.sessions.list[idx].active {
                continue;
            }
            let (taken, budget) = self.sweep_ring_once(idx);
            if budget != 0 && taken >= budget {
                // Budget-capped run: records may remain — re-mark so the
                // next sweep returns without waiting for another WRITE.
                self.ingress.dirty_board.mark(idx as u64);
            }
            processed += taken;
        }
        processed
    }

    // The rings due a dirty-mode visit: the drained doorbell board (rings
    // remotely written since the last sweep) unioned with the clients owed
    // a deferred credit write-back, deduplicated, ascending. Also prunes
    // revoked/inactive clients from the pending set — their rings are
    // gone, there is nothing left to flush.
    fn dirty_due(&mut self) -> Vec<usize> {
        let n = self.ingress.ports.len();
        let mut pending = std::mem::take(&mut self.ingress.credit_pending);
        pending.retain(|&idx| {
            self.ingress.ports.get(idx).is_some_and(Option::is_some)
                && self.sessions.list[idx].active
        });
        let mut due: Vec<usize> = pending.iter().copied().collect();
        for tag in self.ingress.dirty_board.drain() {
            let idx = tag as usize;
            if idx < n && !pending.contains(&idx) {
                due.push(idx);
            }
        }
        self.ingress.credit_pending = pending;
        due.sort_unstable();
        due
    }

    // One budgeted drain of client `idx`'s request ring — the per-client
    // body of the single-shard sweep, shared verbatim by the full-scan and
    // dirty-set paths. Returns `(taken, budget)`.
    fn sweep_ring_once(&mut self, idx: usize) -> (usize, usize) {
        self.ingress.rings_swept += 1;
        let budget = self.sweep_budget(idx);
        let mut taken = 0usize;
        // Whether the current per-client run already sealed a fresh
        // reply — later replies in the run ride the same batched
        // crypto pass (`Config::batched_sealing`).
        let mut run_sealed = false;
        loop {
            if budget != 0 && taken >= budget {
                break;
            }
            // Update reply credits from the client-written word.
            let port = self.ingress.ports[idx].as_mut().expect("live port");
            let consumed =
                u64::from_le_bytes(port.reply_credit.read(0, 8).try_into().expect("8 bytes"));
            port.reply_producer.update_credits(consumed);

            let record = {
                let ring = port.request_ring.clone();
                ring.with_mut(|buf| port.request_consumer.pop(buf))
            };
            let Some(record) = record else { break };
            run_sealed = self.process_record(idx, record, run_sealed);
            taken += 1;
        }
        self.adapt_budget(idx, taken, budget);
        self.post_credit_update(idx, taken > 0);
        (taken, budget)
    }

    // N trusted polling workers (§3.8: "multiple trusted polling
    // threads"), simulated in deterministic order. Worker `w` owns the
    // clients with `client_id % shards == w`. Each sweep runs in three
    // phases:
    //
    //   A. every worker pops + validates its owned rings in pop order and
    //      routes in-window requests to the shard owning the key — its
    //      own execution queue, or a foreign shard's via the handoff
    //      queue (charged `shard_handoff_cycles` + the control copy);
    //   B. every shard drains its execution queue FIFO against its own
    //      table partition;
    //   C. every worker seals its clients' replies in per-client pop
    //      order (preserving the reply_seq / MAC-chain contract), with
    //      the sweep's reply WRITEs coalesced into batched posts and one
    //      credit write-back per client.
    fn poll_sharded(&mut self) -> usize {
        let n = self.ingress.ports.len();
        let shards = self.config.shards;
        let cost = self.cost.clone();
        if self.ingress.rr_cursors.len() < shards {
            self.ingress.rr_cursors.resize(shards, 0);
        }
        // Dirty-set mode: phase A visits only rings marked since the last
        // drain (plus deferred-credit clients) instead of every owned
        // ring. Phases B and C are untouched — they already operate only
        // on what phase A swept.
        let dirty: Option<Vec<usize>> = self.config.dirty_ring_sweep.then(|| self.dirty_due());

        // Pending actions are stored per dense *visit slot* (assigned in
        // phase-A visit order), not per client id: a sweep's bookkeeping
        // then costs memory proportional to the clients it visited, never
        // the connected fleet — what makes dirty-set sweeps O(dirty) at
        // 100k clients.
        let mut actions: Vec<Vec<Option<PendingAction>>> = Vec::new();
        let mut exec_queues: Vec<VecDeque<(usize, usize, usize)>> =
            (0..shards).map(|_| VecDeque::new()).collect();
        // Swept clients in visit order: (client idx, action slot, records
        // popped). The count feeds the budget controller and the
        // credit-elision flush rule in phase C.
        let mut swept: Vec<(usize, usize, usize)> = Vec::new();
        let mut processed = 0usize;

        // Phase A — worker sweeps: pop + validate, route to owning shard.
        for w in 0..shards {
            let owned: Vec<usize> = match &dirty {
                Some(due) => due
                    .iter()
                    .copied()
                    .filter(|&i| i % shards == w)
                    .filter(|&i| self.ingress.ports[i].is_some() && self.sessions.list[i].active)
                    .collect(),
                None => (w..n)
                    .step_by(shards)
                    .filter(|&i| self.ingress.ports[i].is_some() && self.sessions.list[i].active)
                    .collect(),
            };
            if owned.is_empty() {
                continue;
            }
            let start = self.ingress.rr_cursors[w] % owned.len();
            self.ingress.rr_cursors[w] = (start + 1) % owned.len();
            for step in 0..owned.len() {
                let idx = owned[(start + step) % owned.len()];
                self.ingress.rings_swept += 1;
                let slot = actions.len();
                actions.push(Vec::new());
                let budget = self.sweep_budget(idx);
                let mut taken = 0usize;
                loop {
                    if budget != 0 && taken >= budget {
                        break;
                    }
                    let port = self.ingress.ports[idx].as_mut().expect("live port");
                    let consumed = u64::from_le_bytes(
                        port.reply_credit.read(0, 8).try_into().expect("8 bytes"),
                    );
                    port.reply_producer.update_credits(consumed);
                    let record = {
                        let ring = port.request_ring.clone();
                        ring.with_mut(|buf| port.request_consumer.pop(buf))
                    };
                    let Some(record) = record else { break };
                    processed += 1;
                    taken += 1;
                    let mut meter = Meter::new();
                    let kind = match self.validate_record(idx, &record, &mut meter) {
                        Validated::Reject {
                            status,
                            opcode,
                            oid,
                            remember,
                        } => ActionKind::Seal {
                            status,
                            opcode,
                            value_len: 0,
                            plan: ReplyPlan::Control { status, oid },
                            remember,
                            set_last: false,
                            shard: w as u32,
                        },
                        Validated::Retransmit { status, opcode } => {
                            ActionKind::Retransmit { status, opcode }
                        }
                        Validated::Execute {
                            opcode,
                            control,
                            frame,
                        } => {
                            let target = self.store.table.shard_of(&control.key);
                            if target != w {
                                // Shard-crossing handoff: the popping
                                // worker copies the validated control into
                                // the owning shard's queue.
                                self.ingress.handoffs += 1;
                                self.obs.inc("server.handoffs", 1);
                                meter.charge(
                                    Stage::Enclave,
                                    cost.server_time(cost.memcpy(frame.sealed_control.len())),
                                );
                                meter.charge(
                                    Stage::Enclave,
                                    cost.server_time(Cycles(cost.shard_handoff_cycles)),
                                );
                            }
                            exec_queues[target].push_back((idx, slot, actions[slot].len()));
                            ActionKind::AwaitExec {
                                opcode,
                                control,
                                frame,
                            }
                        }
                    };
                    actions[slot].push(Some(PendingAction { meter, kind }));
                }
                self.adapt_budget(idx, taken, budget);
                if dirty.is_some() && budget != 0 && taken >= budget {
                    // Budget-capped run: records may remain — re-mark so
                    // the next sweep returns without another WRITE.
                    self.ingress.dirty_board.mark(idx as u64);
                }
                swept.push((idx, slot, taken));
            }
        }

        // Phase B — per-shard FIFO execution against the owned partition.
        for (s, queue) in exec_queues.iter_mut().enumerate() {
            while let Some((idx, slot, ai)) = queue.pop_front() {
                let mut act = actions[slot][ai].take().expect("pending action");
                let ActionKind::AwaitExec {
                    opcode,
                    control,
                    frame,
                } = act.kind
                else {
                    unreachable!("execution queues hold AwaitExec entries");
                };
                let session_key = self.sessions.list[idx].session_key.clone();
                let journal_tap = self
                    .durability
                    .is_some()
                    .then(|| (control.key.clone(), control.oid));
                let op_oid = control.oid;
                let exec_result = if let Some(busy) = self.catchup_gate(opcode, op_oid) {
                    Ok(busy)
                } else if let Some(redirect) = self.routing_gate(&control.key, op_oid) {
                    Ok(redirect)
                } else {
                    let mut ctx = ExecCtx {
                        enclave: &mut self.enclave,
                        config: &self.config,
                        cost: &self.cost,
                        adversary: &mut self.adversary,
                    };
                    self.store.execute_plan(
                        &mut ctx,
                        ExecRequest {
                            idx,
                            opcode,
                            control,
                            frame: &frame,
                            session_key: &session_key,
                        },
                        &mut act.meter,
                    )
                };
                act.kind = match exec_result {
                    Ok((status, value_len, plan)) => {
                        self.trace("exec", super::op_metric(opcode), idx as u64, status as u64);
                        if let Some((key, oid)) = &journal_tap {
                            self.journal_mutation(idx, opcode, status, key, *oid, &mut act.meter);
                        }
                        ActionKind::Seal {
                            status,
                            opcode,
                            value_len,
                            plan,
                            remember: true,
                            set_last: true,
                            shard: s as u32,
                        }
                    }
                    Err(_) => ActionKind::Seal {
                        status: Status::Error,
                        opcode: Opcode::Get,
                        value_len: 0,
                        plan: ReplyPlan::Control {
                            status: Status::Error,
                            oid: 0,
                        },
                        remember: false,
                        set_last: false,
                        shard: s as u32,
                    },
                };
                actions[slot][ai] = Some(act);
            }
        }

        // Phase C — per-client in-order sealing + batched reply WRITEs +
        // one credit write-back per swept client.
        for &(idx, slot, taken) in &swept {
            let mut batch = ReplyBatch::default();
            // The client's run so far has sealed a fresh reply: later
            // seals ride the same batched crypto pass. A retransmit
            // interrupts the run (its WRITEs flush first), so the pass
            // restarts after it.
            let mut run_sealed = false;
            for ai in 0..actions[slot].len() {
                let mut act = actions[slot][ai].take().expect("sealed once");
                let (status, opcode, value_len, shard) = match act.kind {
                    ActionKind::Seal {
                        status,
                        opcode,
                        value_len,
                        plan,
                        remember,
                        set_last,
                        shard,
                    } => {
                        if set_last {
                            self.sessions.list[idx].last_status = status;
                        }
                        let reply = self.seal_for(idx, opcode, plan, run_sealed, &mut act.meter);
                        run_sealed = true;
                        self.charge_fixed_occupancy(opcode, &mut act.meter);
                        self.emit_fresh_batched(idx, reply, remember, &mut batch, &mut act.meter);
                        (status, opcode, value_len, shard)
                    }
                    ActionKind::Retransmit { status, opcode } => {
                        // Preserve WRITE ordering: everything batched so
                        // far lands before the retransmitted bytes.
                        self.flush_reply_batch(idx, &mut batch);
                        run_sealed = false;
                        self.charge_fixed_occupancy(opcode, &mut act.meter);
                        self.emit_retransmit(idx, &mut act.meter);
                        (status, opcode, 0, (idx % shards) as u32)
                    }
                    ActionKind::AwaitExec { .. } => unreachable!("executed in phase B"),
                };
                self.push_report(OpReport {
                    client_id: idx as u32,
                    opcode,
                    status,
                    value_len,
                    shard,
                    meter: act.meter,
                });
            }
            self.flush_reply_batch(idx, &mut batch);
            self.post_credit_update(idx, taken > 0);
        }
        processed
    }

    // The single-shard path's per-record processing: validate → execute →
    // seal → emit, all in the client's pop order. `run_sealed` says the
    // client's current sweep run already sealed a fresh reply, so this
    // record's seal (if any) rides the same batched crypto pass; returns
    // whether the run has an open pass after this record (retransmits
    // interrupt it).
    fn process_record(&mut self, idx: usize, record: Vec<u8>, run_sealed: bool) -> bool {
        let mut meter = Meter::new();

        let (status, opcode, value_len, shard, out) =
            match self.validate_record(idx, &record, &mut meter) {
                Validated::Reject {
                    status,
                    opcode,
                    oid,
                    remember,
                } => {
                    let reply = self.seal_for(
                        idx,
                        opcode,
                        ReplyPlan::Control { status, oid },
                        run_sealed,
                        &mut meter,
                    );
                    (status, opcode, 0, 0u32, ReplyOut::Fresh { reply, remember })
                }
                Validated::Retransmit { status, opcode } => {
                    (status, opcode, 0, 0u32, ReplyOut::Retransmit)
                }
                Validated::Execute {
                    opcode,
                    control,
                    frame,
                } => {
                    let shard = self.store.table.shard_of(&control.key) as u32;
                    let session_key = self.sessions.list[idx].session_key.clone();
                    let journal_tap = self
                        .durability
                        .is_some()
                        .then(|| (control.key.clone(), control.oid));
                    let op_oid = control.oid;
                    let exec_result = if let Some(busy) = self.catchup_gate(opcode, op_oid) {
                        Ok(busy)
                    } else if let Some(redirect) = self.routing_gate(&control.key, op_oid) {
                        Ok(redirect)
                    } else {
                        let mut ctx = ExecCtx {
                            enclave: &mut self.enclave,
                            config: &self.config,
                            cost: &self.cost,
                            adversary: &mut self.adversary,
                        };
                        self.store.execute_plan(
                            &mut ctx,
                            ExecRequest {
                                idx,
                                opcode,
                                control,
                                frame: &frame,
                                session_key: &session_key,
                            },
                            &mut meter,
                        )
                    };
                    match exec_result {
                        Ok((status, value_len, plan)) => {
                            self.trace("exec", super::op_metric(opcode), idx as u64, status as u64);
                            if let Some((key, oid)) = &journal_tap {
                                self.journal_mutation(idx, opcode, status, key, *oid, &mut meter);
                            }
                            self.sessions.list[idx].last_status = status;
                            let reply = self.seal_for(idx, opcode, plan, run_sealed, &mut meter);
                            (
                                status,
                                opcode,
                                value_len,
                                shard,
                                ReplyOut::Fresh {
                                    reply,
                                    remember: true,
                                },
                            )
                        }
                        Err(_) => {
                            // Store-level failure: emit an error reply that at
                            // least unblocks the client (chain-linked like any
                            // other, so the client's verification stream stays
                            // contiguous).
                            let reply = self.seal_for(
                                idx,
                                Opcode::Get,
                                ReplyPlan::Control {
                                    status: Status::Error,
                                    oid: 0,
                                },
                                run_sealed,
                                &mut meter,
                            );
                            (
                                Status::Error,
                                Opcode::Get,
                                0,
                                shard,
                                ReplyOut::Fresh {
                                    reply,
                                    remember: false,
                                },
                            )
                        }
                    }
                }
            };

        self.charge_fixed_occupancy(opcode, &mut meter);

        // Write the reply into the client's reply ring (one-sided WRITE by
        // the untrusted worker, §3.8).
        let sealed_fresh = matches!(out, ReplyOut::Fresh { .. });
        match out {
            ReplyOut::Fresh { reply, remember } => {
                self.emit_fresh(idx, reply, remember, &mut meter)
            }
            ReplyOut::Retransmit => self.emit_retransmit(idx, &mut meter),
        }

        self.push_report(OpReport {
            client_id: idx as u32,
            opcode,
            status,
            value_len,
            shard,
            meter,
        });
        sealed_fresh
    }

    // Seals one [`ReplyPlan`] for client `idx` by assembling the narrow
    // [`SealCtx`] out of disjoint borrows of the stage states. With
    // `Config::batched_sealing` on and `in_run` set (a fresh reply was
    // already sealed this run), the seal joins the run's batched crypto
    // pass: the fixed AES-GCM setup is paid once by the run's first reply
    // and this op's meter only carries the per-byte work — the amortised
    // cycles are attributed to the batch's ops, never dropped.
    fn seal_for(
        &mut self,
        idx: usize,
        opcode: Opcode,
        plan: ReplyPlan,
        in_run: bool,
        meter: &mut Meter,
    ) -> crate::wire::ReplyFrame {
        let batched = in_run && self.config.batched_sealing;
        if batched {
            self.obs.inc("seal.batched_ops", 1);
        }
        let mut ctx = SealCtx {
            enclave: &mut self.enclave,
            cost: &self.cost,
            busy_retry_ns: self.config.busy_retry_ns,
            evidence: self.store.evidence(),
            batched,
        };
        let reply = seal::seal_plan(&mut ctx, &mut self.sessions.list[idx], opcode, plan, meter);
        self.trace(
            "seal",
            super::op_metric(opcode),
            idx as u64,
            reply.reply_seq,
        );
        reply
    }

    // Fixed per-op occupancy (fitted constants; DESIGN.md §4): part of it
    // is on the request's critical path, the rest is polling overhead.
    // With any fast-path knob on, the overhead share shrinks by the
    // calibrated `fast_overhead_factor` — the polling/bookkeeping that
    // adaptive sweeps, elided credit WRITEs, coalesced doorbells, and the
    // reply arena no longer spend per op. The critical share is never
    // scaled: the request still waits for the same work.
    fn charge_fixed_occupancy(&mut self, opcode: Opcode, meter: &mut Meter) {
        let cost = self.cost.clone();
        let mut fixed = cost.precursor_get_fixed;
        if opcode == Opcode::Put {
            fixed += cost.precursor_put_extra;
        }
        if self.config.mode == EncryptionMode::ServerSide {
            fixed += cost.server_enc_extra;
        }
        let critical = cost.critical_part(Cycles(fixed));
        let mut overhead = fixed - critical.0;
        if self.config.fast_path_enabled() {
            overhead = (overhead as f64 * cost.fast_overhead_factor).round() as u64;
        }
        meter.charge(Stage::ServerCritical, cost.server_time(critical));
        meter.charge(Stage::ServerOverhead, cost.server_time(Cycles(overhead)));
    }

    // Observability wrapper around validation: counts each outcome class
    // and emits the ingress-stage trace event.
    fn validate_record(&mut self, idx: usize, record: &[u8], meter: &mut Meter) -> Validated {
        let v = self.validate_record_inner(idx, record, meter);
        let (counter, event) = match &v {
            Validated::Reject { .. } => ("server.validate.reject", "reject"),
            Validated::Retransmit { .. } => ("server.validate.retransmit", "retransmit"),
            Validated::Execute { .. } => ("server.validate.execute", "execute"),
        };
        self.obs.inc(counter, 1);
        self.trace("ingress", event, idx as u64, record.len() as u64);
        v
    }

    // Decodes, authenticates and window-checks one popped request record —
    // everything that must happen in a client's pop order, but *before*
    // the key-addressed table access. The result tells the caller whether
    // to reply straight away ([`Validated::Reject`]), re-issue the stored
    // reply ([`Validated::Retransmit`]), or route the request to the shard
    // owning its key ([`Validated::Execute`]).
    fn validate_record_inner(&mut self, idx: usize, record: &[u8], meter: &mut Meter) -> Validated {
        let cost = self.cost.clone();

        // Untrusted: the record was copied out of the ring by the poller.
        meter.charge(
            Stage::ServerCritical,
            cost.server_time(cost.memcpy(record.len())),
        );
        meter.charge(
            Stage::ServerCritical,
            cost.server_time(Cycles(cost.rdma_poll_cycles)),
        );

        // Structurally invalid records still earn an error reply that at
        // least unblocks the client (chain-linked like any other, so the
        // client's verification stream stays contiguous).
        let Ok(frame) = RequestFrame::decode(record) else {
            return Validated::Reject {
                status: Status::Error,
                opcode: Opcode::Get,
                oid: 0,
                remember: false,
            };
        };
        if frame.client_id as usize != idx {
            return Validated::Reject {
                status: Status::Error,
                opcode: Opcode::Get,
                oid: 0,
                remember: false,
            };
        }
        let opcode = frame.opcode;

        // Only the control segment crosses into the enclave (§3.7 step 3).
        self.enclave
            .copy_across_boundary(frame.sealed_control.len(), meter, &cost);

        // Trusted: decrypt + authenticate the control data (Algorithm 2,
        // lines 2-3).
        let session_key = self.sessions.list[idx].session_key.clone();
        let aad = request_aad(opcode, frame.client_id);
        meter.charge(
            Stage::Enclave,
            cost.server_time(cost.aes_gcm(frame.sealed_control.len())),
        );
        let Ok(control_plain) = gcm::open(&session_key, &frame.iv, &aad, &frame.sealed_control)
        else {
            return Validated::Reject {
                status: Status::Error,
                opcode,
                oid: 0,
                remember: false,
            };
        };
        let Ok(control) = RequestControl::decode(&control_plain) else {
            return Validated::Reject {
                status: Status::Error,
                opcode,
                oid: 0,
                remember: false,
            };
        };

        // Replay detection, relaxed to an at-most-once window (Algorithm 2,
        // lines 4-5): the per-client oid slot lives in trusted memory. The
        // *previous* oid is tolerated — it is a retransmission after a lost
        // reply (or a replayed frame, which then gains nothing: the cached
        // acknowledgement is re-sent and no state changes). Anything else
        // off-sequence is rejected.
        self.enclave.touch(
            self.sessions.client_region,
            idx as u64 * 64,
            64,
            meter,
            &cost,
        );
        let expected = self.sessions.list[idx].expected_oid;
        let retransmit = control.oid != 0 && control.oid + 1 == expected;
        if control.oid != expected && !retransmit {
            return Validated::Reject {
                status: Status::Replay,
                opcode,
                oid: control.oid,
                remember: false,
            };
        }
        if retransmit {
            let no_stored_reply = self.ingress.ports[idx]
                .as_ref()
                .is_none_or(|p| p.last_reply.is_empty());
            if no_stored_reply {
                // The session was re-established since the operation ran
                // (QP reconnect or crash-restart), so the original reply
                // bytes — sealed under the old session key — are gone.
                // Reads are idempotent: re-execute them for a full reply.
                // Mutations must not run twice: acknowledge from the cached
                // status.
                if opcode == Opcode::Get {
                    return Validated::Execute {
                        opcode,
                        control,
                        frame,
                    };
                }
                let cached = self.sessions.list[idx].last_status;
                return Validated::Reject {
                    status: cached,
                    opcode,
                    oid: control.oid,
                    remember: true,
                };
            }
            // Same session: re-issue the stored reply WRITEs verbatim
            // (fills a reply-ring hole; the client dedups by reply_seq).
            let cached = self.sessions.list[idx].last_status;
            return Validated::Retransmit {
                status: cached,
                opcode,
            };
        }
        self.sessions.list[idx].expected_oid += 1;
        Validated::Execute {
            opcode,
            control,
            frame,
        }
    }
}
