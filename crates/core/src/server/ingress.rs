//! Ingress stage: the untrusted per-client plumbing.
//!
//! Owns [`Ingress`] — the per-client [`ClientPort`]s (request-ring
//! consumers, reply-ring producers, credit words), the bounded
//! [`OpReport`] buffer, and the sweep counters. The stage's job is the
//! host-side I/O: provisioning rings on admission, posting reply WRITEs
//! (per-record or coalesced into per-sweep [`ReplyBatch`]es), re-issuing
//! remembered replies on retransmission, and the credit write-backs.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use precursor_crypto::keys::Key128;
use precursor_rdma::mr::{Memory, RemoteKey, WriteBoard};
use precursor_rdma::qp::{connect_pair, connect_pair_faulty, QueuePair};
use precursor_sim::meter::{Meter, Stage};
use precursor_sim::time::Cycles;
use precursor_storage::ring::{RingConsumer, RingProducer};

use crate::wire::ReplyFrame;

use super::{ClientBundle, OpReport, PrecursorServer};

// Untrusted per-client plumbing.
#[derive(Debug)]
pub(super) struct ClientPort {
    pub(super) qp: QueuePair, // server end
    pub(super) request_ring: Memory,
    pub(super) request_consumer: RingConsumer,
    pub(super) reply_producer: RingProducer,
    pub(super) reply_ring_rkey: RemoteKey,
    pub(super) credit_rkey: RemoteKey,
    pub(super) reply_credit: Memory,
    /// `(offset, bytes)` of the WRITEs that carried the last executed
    /// operation's reply — re-issued verbatim when that operation is
    /// retransmitted, so a reply lost in flight (a hole the client's ring
    /// consumer is parked on) gets filled idempotently.
    pub(super) last_reply: Vec<(usize, Vec<u8>)>,
    /// The last remembered reply as one encoded ring record, plus the
    /// producer's absolute position after it was pushed. When the client has
    /// already consumed past that position (a Byzantine host substituted the
    /// record, which the consumer then zeroed), a verbatim rewrite would
    /// deposit garbage into consumed ring space — instead the record is
    /// re-pushed as a *fresh* ring record (same `reply_seq`; the client
    /// dedups or late-accepts it).
    pub(super) last_reply_bytes: Vec<u8>,
    pub(super) last_reply_end: u64,
    /// The last `consumed` value written back to the client's credit word
    /// — a sweep that consumed nothing skips the (redundant) WRITE.
    pub(super) last_credit: u64,
}

// Per-client reply WRITEs coalesced over one sharded sweep: contiguous
// ring chunks merge into one one-sided WRITE, posted at flush.
#[derive(Default)]
pub(super) struct ReplyBatch {
    pub(super) writes: Vec<(usize, Vec<u8>)>,
}

// Ingress-stage state: every untrusted per-client port plus the report
// buffer and the sweep counters.
#[derive(Debug)]
pub(super) struct Ingress {
    // `None` marks a revoked slot: ids are stable (they index the trusted
    // session table) and are never recycled, but the revoked client's rings
    // and MRs are dropped.
    pub(super) ports: Vec<Option<ClientPort>>,
    pub(super) reports: VecDeque<OpReport>,
    pub(super) reports_dropped: u64,
    // Round-robin start of the next poll sweep (single-shard mode).
    pub(super) rr_cursor: usize,
    // Per-worker round-robin cursors over each worker's owned clients
    // (sharded mode).
    pub(super) rr_cursors: Vec<usize>,
    pub(super) polls: u64,
    // Credit write-backs actually posted (sweeps that consumed nothing
    // skip the redundant WRITE).
    pub(super) credit_writes: u64,
    // Requests popped by a worker whose shard did not own the key, handed
    // across the shard-crossing queue.
    pub(super) handoffs: u64,
    // Adaptive per-client poll budgets (fast path; `Config::
    // adaptive_poll_budget`). Indexed like `ports`; grown lazily. Always
    // within `[poll_budget_min, poll_budget_max]`.
    pub(super) budgets: Vec<usize>,
    pub(super) budget_adjustments: u64,
    // Credit WRITEs deferred below the `lazy_credit_bytes` threshold.
    pub(super) credits_elided: u64,
    // Spare reply-frame buffers (fast path; `Config::reply_arena`):
    // buffers that carried a non-remembered reply come back here instead
    // of being dropped, so the steady state encodes into reused capacity.
    pub(super) arena: Vec<Vec<u8>>,
    // Doorbell board for dirty-ring sweeps (`Config::dirty_ring_sweep`):
    // request rings are registered with a write-watch that marks the
    // owning client's index here on every *delivered* WRITE, so sweeps can
    // drain the board instead of scanning every idle ring.
    pub(super) dirty_board: WriteBoard,
    // Clients owed a deferred (elided) credit write-back. Dirty-mode
    // sweeps must keep visiting them until the flush — the first visit
    // that pops nothing posts the deferred WRITE — or a producer parked
    // on `RingFull` would never unblock (the `tests/fastpath.rs` liveness
    // rule).
    pub(super) credit_pending: BTreeSet<usize>,
    // Ring visits performed by poll sweeps (all modes): what the driver's
    // cost model charges `poll_scan_per_client` against in dirty mode,
    // instead of assuming `clients × polls`.
    pub(super) rings_swept: u64,
}

// Bound on pooled arena buffers — enough for every client of a wide sweep
// without letting a burst pin memory forever.
const ARENA_MAX_BUFS: usize = 256;

impl PrecursorServer {
    // The untrusted half of client admission: a fresh QP pair (through the
    // fault injector when one is installed) plus rings and credit words.
    pub(super) fn provision_port(
        &mut self,
        client_id: u32,
        session_key: &Key128,
    ) -> (ClientPort, ClientBundle) {
        let (client_end, server_end) = match &self.faults {
            Some(f) => connect_pair_faulty(self.cost.rdma_inline_max, Arc::clone(f)),
            None => connect_pair(self.cost.rdma_inline_max),
        };

        // Server-side request ring, remotely writable by the client. With
        // dirty-ring sweeps on, the registration carries a write-watch:
        // every delivered client WRITE rings the doorbell board, which is
        // what lets sweeps skip idle rings entirely.
        let request_ring = Memory::zeroed(self.config.ring_bytes);
        let request_ring_rkey = if self.config.dirty_ring_sweep {
            server_end.register_watched(
                request_ring.clone(),
                true,
                self.ingress.dirty_board.clone(),
                u64::from(client_id),
            )
        } else {
            server_end.register(request_ring.clone(), true)
        };
        // Server-side reply-credit word, remotely writable by the client.
        let reply_credit = Memory::zeroed(8);
        let reply_credit_rkey = server_end.register(reply_credit.clone(), true);
        // Client-side reply ring + credit word, remotely writable by the
        // server.
        let reply_ring = Memory::zeroed(self.config.ring_bytes);
        let reply_ring_rkey = client_end.register(reply_ring.clone(), true);
        let credit_word = Memory::zeroed(8);
        let credit_rkey = client_end.register(credit_word.clone(), true);

        let port = ClientPort {
            qp: server_end,
            request_ring,
            request_consumer: RingConsumer::new(self.config.ring_bytes),
            reply_producer: RingProducer::new(self.config.ring_bytes),
            reply_ring_rkey,
            credit_rkey,
            reply_credit,
            last_reply: Vec::new(),
            last_reply_bytes: Vec::new(),
            last_reply_end: 0,
            last_credit: 0,
        };
        let bundle = ClientBundle {
            client_id,
            session_key: session_key.clone(),
            qp: client_end,
            request_ring_rkey,
            reply_ring,
            credit_word,
            reply_credit_rkey,
            ring_bytes: self.config.ring_bytes,
            mode: self.config.mode,
            expected_oid: 1,
            epoch: 1,
        };
        (port, bundle)
    }

    // Credit write-back: one small one-sided WRITE per sweep (§3.8,
    // "periodically, these threads update clients about the newly
    // available buffer slots using one-sided writes") — skipped when the
    // sweep consumed nothing, so idle clients' credit words are not
    // redundantly rewritten.
    //
    // With `Config::lazy_credit_bytes > 0` the WRITE is also elided while
    // the bytes freed since the last write-back stay under the threshold
    // *and* this sweep popped something from the client (`took_any`). The
    // first sweep that pops nothing flushes the deferred update, so a
    // producer parked on `RingFull` is unblocked within one sweep of going
    // idle — the liveness rule `tests/fastpath.rs` pins.
    pub(super) fn post_credit_update(&mut self, idx: usize, took_any: bool) {
        let lazy = self.config.lazy_credit_bytes as u64;
        let (consumed, last) = {
            let port = self.ingress.ports[idx].as_ref().expect("live port");
            (port.request_consumer.consumed(), port.last_credit)
        };
        if consumed == last {
            if self.config.dirty_ring_sweep {
                self.ingress.credit_pending.remove(&idx);
            }
            return;
        }
        if lazy > 0 && took_any && consumed - last < lazy {
            self.ingress.credits_elided += 1;
            self.obs.inc("server.credits_elided", 1);
            self.trace("ingress", "credit_elided", idx as u64, consumed);
            if self.config.dirty_ring_sweep {
                // Dirty-mode sweeps would otherwise never return to a
                // quiet ring: remember the deferred write-back so the
                // client keeps getting (idle) visits until it flushes.
                self.ingress.credit_pending.insert(idx);
            }
            return;
        }
        if self.config.dirty_ring_sweep {
            self.ingress.credit_pending.remove(&idx);
        }
        let port = self.ingress.ports[idx].as_mut().expect("live port");
        port.last_credit = consumed;
        let credit_rkey = port.credit_rkey;
        let _ = port
            .qp
            .post_write(credit_rkey, 0, &consumed.to_le_bytes(), false);
        self.ingress.credit_writes += 1;
        self.obs.inc("server.credit_writes", 1);
        self.trace("ingress", "credit_write", idx as u64, consumed);
    }

    // Adaptive poll-budget controller (fast path): the budget a sweep
    // grants client `idx`. With the knob off this is the static PR-2
    // budget, bit-for-bit.
    pub(super) fn sweep_budget(&mut self, idx: usize) -> usize {
        if !self.config.adaptive_poll_budget {
            return self.config.poll_budget_per_client;
        }
        let min = self.config.poll_budget_min.max(1);
        let max = self.config.poll_budget_max.max(min);
        if self.ingress.budgets.len() <= idx {
            // New clients start from the static budget, clamped into the
            // adaptive band (`0` = unbounded starts at the ceiling).
            let initial = if self.config.poll_budget_per_client == 0 {
                max
            } else {
                self.config.poll_budget_per_client.clamp(min, max)
            };
            self.ingress.budgets.resize(idx + 1, initial);
        }
        self.ingress.budgets[idx]
    }

    // Controller update after a sweep granted `budget` and popped `taken`
    // records: an empty ring backs off (halve toward the floor), a ring
    // that ate its whole budget bursts (double toward the ceiling), and a
    // partially filled ring holds steady — so the controller converges
    // under static load and never leaves `[min, max]`.
    pub(super) fn adapt_budget(&mut self, idx: usize, taken: usize, budget: usize) {
        if !self.config.adaptive_poll_budget {
            return;
        }
        let min = self.config.poll_budget_min.max(1);
        let max = self.config.poll_budget_max.max(min);
        let cur = self.ingress.budgets[idx];
        let next = if taken == 0 {
            (cur / 2).clamp(min, max)
        } else if taken >= budget {
            cur.saturating_mul(2).clamp(min, max)
        } else {
            cur
        };
        if next != cur {
            self.ingress.budgets[idx] = next;
            self.ingress.budget_adjustments += 1;
            self.obs.inc("server.budget_adjustments", 1);
            self.trace("ingress", "budget_adjust", idx as u64, next as u64);
        }
    }

    // Encodes a reply frame, reusing a pooled buffer when the arena knob
    // is on. The produced bytes are identical either way.
    pub(super) fn encode_reply(&mut self, reply: &ReplyFrame) -> Vec<u8> {
        if !self.config.reply_arena {
            return reply.encode();
        }
        let mut buf = match self.ingress.arena.pop() {
            Some(mut b) => {
                b.clear();
                self.obs.inc("server.arena_reuses", 1);
                b
            }
            None => Vec::new(),
        };
        reply.encode_into(&mut buf);
        buf
    }

    // Returns a reply-frame buffer to the arena once nothing references
    // its bytes any more.
    pub(super) fn recycle_reply_buf(&mut self, buf: Vec<u8>) {
        if self.config.reply_arena
            && buf.capacity() > 0
            && self.ingress.arena.len() < ARENA_MAX_BUFS
        {
            self.ingress.arena.push(buf);
        }
    }

    /// Takes the per-operation reports accumulated by [`poll`](Self::poll).
    pub fn take_reports(&mut self) -> Vec<OpReport> {
        self.ingress.reports.drain(..).collect()
    }

    // Posts a freshly sealed reply's ring WRITEs immediately (the
    // single-shard path's per-record posting).
    pub(super) fn emit_fresh(
        &mut self,
        idx: usize,
        reply: ReplyFrame,
        remember: bool,
        meter: &mut Meter,
    ) {
        let cost = self.cost.clone();
        let bytes = self.encode_reply(&reply);
        let bytes_len = bytes.len();
        // Push into the producer first, collecting the ring WRITEs
        // the honest host would post ...
        let (writes, end, pushed) = {
            let port = self.ingress.ports[idx].as_mut().expect("live port");
            let mut writes = Vec::with_capacity(2);
            let pushed = port.reply_producer.push_with(&bytes, |off, chunk| {
                writes.push((off, chunk.to_vec()));
            });
            (writes, port.reply_producer.written(), pushed.is_some())
        };
        // ... then let the adversary (when installed) substitute,
        // hold, or duplicate them before they hit the wire.
        let posted = match &mut self.adversary {
            Some(adv) => adv.on_reply_record(idx as u32, writes.clone()),
            None => writes.clone(),
        };
        // The WRITEs go through the group-commit gate: with no journal (or
        // an up-to-date commit point) they post immediately, otherwise they
        // are held until the operation's journal group commits.
        self.post_or_gate(idx, posted);
        let port = self.ingress.ports[idx].as_mut().expect("live port");
        let spare = if remember {
            // Remember the *honest* record for retransmissions —
            // retransmits bypass the adversary by design, so a
            // wronged client can always recover the real reply.
            port.last_reply = writes;
            port.last_reply_end = end;
            std::mem::replace(&mut port.last_reply_bytes, bytes)
        } else {
            bytes
        };
        self.recycle_reply_buf(spare);
        // Metering stays that of the honest single post, so cost
        // accounting is identical with and without an adversary.
        meter.counters_mut().rdma_posts += 1;
        meter.counters_mut().tx_bytes += bytes_len as u64;
        meter.charge(
            Stage::ServerCritical,
            cost.server_time(Cycles(cost.rdma_post_cycles)),
        );
        if !pushed {
            // Reply ring full: in the real system the worker would
            // retry after the next credit update; the simulation's
            // rings are sized to make this unreachable under the
            // drivers.
            debug_assert!(false, "reply ring full");
        }
    }

    // Sharded-path variant of [`emit_fresh`]: instead of posting each
    // record's WRITEs immediately, ring-contiguous chunks from one sweep
    // are coalesced into the per-client [`ReplyBatch`] and posted together
    // at the end of the sweep — the per-sweep reply batching of §3.8. With
    // an adversary installed the per-record path is kept (batching would
    // shrink its attack surface and change what the harness exercises).
    pub(super) fn emit_fresh_batched(
        &mut self,
        idx: usize,
        reply: ReplyFrame,
        remember: bool,
        batch: &mut ReplyBatch,
        meter: &mut Meter,
    ) {
        if self.adversary.is_some() {
            self.emit_fresh(idx, reply, remember, meter);
            return;
        }
        let cost = self.cost.clone();
        let bytes = self.encode_reply(&reply);
        let bytes_len = bytes.len();
        let (writes, end, pushed) = {
            let port = self.ingress.ports[idx].as_mut().expect("live port");
            let mut writes = Vec::with_capacity(2);
            let pushed = port.reply_producer.push_with(&bytes, |off, chunk| {
                writes.push((off, chunk.to_vec()));
            });
            (writes, port.reply_producer.written(), pushed.is_some())
        };
        for (off, chunk) in &writes {
            let mergeable = matches!(
                batch.writes.last(),
                Some((last_off, last_bytes)) if last_off + last_bytes.len() == *off
            );
            if mergeable {
                let (_, last_bytes) = batch.writes.last_mut().expect("non-empty batch");
                last_bytes.extend_from_slice(chunk);
            } else {
                batch.writes.push((*off, chunk.clone()));
                // Only a chunk that opens a new coalesced WRITE pays the
                // post; merged chunks ride along for free.
                meter.counters_mut().rdma_posts += 1;
                meter.charge(
                    Stage::ServerCritical,
                    cost.server_time(Cycles(cost.rdma_post_cycles)),
                );
            }
        }
        meter.counters_mut().tx_bytes += bytes_len as u64;
        let port = self.ingress.ports[idx].as_mut().expect("live port");
        let spare = if remember {
            port.last_reply = writes;
            port.last_reply_end = end;
            std::mem::replace(&mut port.last_reply_bytes, bytes)
        } else {
            bytes
        };
        self.recycle_reply_buf(spare);
        if !pushed {
            debug_assert!(false, "reply ring full");
        }
    }

    // Posts every coalesced WRITE accumulated for `idx` this sweep
    // (through the group-commit gate, like every reply WRITE).
    pub(super) fn flush_reply_batch(&mut self, idx: usize, batch: &mut ReplyBatch) {
        if batch.writes.is_empty() {
            return;
        }
        let writes: Vec<_> = batch.writes.drain(..).collect();
        self.post_or_gate(idx, writes);
    }

    // Re-issues the remembered last reply of `idx` (retransmission path).
    pub(super) fn emit_retransmit(&mut self, idx: usize, meter: &mut Meter) {
        let cost = self.cost.clone();
        let writes = {
            let port = self.ingress.ports[idx].as_mut().expect("live port");
            let consumed =
                u64::from_le_bytes(port.reply_credit.read(0, 8).try_into().expect("8 bytes"));
            if consumed >= port.last_reply_end && !port.last_reply_bytes.is_empty() {
                // The client already consumed past the remembered
                // record (it saw an adversary-substituted record there
                // and zeroed the slot): rewriting the old offsets would
                // deposit bytes into consumed ring space. Re-push the
                // remembered record as a fresh one instead — same
                // `reply_seq`, so the client dedups or late-accepts it.
                port.reply_producer.update_credits(consumed);
                let bytes = port.last_reply_bytes.clone();
                let mut writes = Vec::with_capacity(2);
                let _ = port.reply_producer.push_with(&bytes, |off, chunk| {
                    writes.push((off, chunk.to_vec()));
                });
                for (_, chunk) in &writes {
                    meter.counters_mut().rdma_posts += 1;
                    meter.counters_mut().tx_bytes += chunk.len() as u64;
                }
                port.last_reply = writes.clone();
                port.last_reply_end = port.reply_producer.written();
                writes
            } else {
                // Re-issue the last reply's WRITEs verbatim: fills any
                // hole a dropped reply WRITE left in the client's reply
                // ring, without consuming a new reply sequence number.
                for (_, bytes) in &port.last_reply {
                    meter.counters_mut().rdma_posts += 1;
                    meter.counters_mut().tx_bytes += bytes.len() as u64;
                }
                port.last_reply.clone()
            }
        };
        self.post_or_gate(idx, writes);
        meter.charge(
            Stage::ServerCritical,
            cost.server_time(Cycles(cost.rdma_post_cycles)),
        );
    }

    // Bounded report buffer: a caller that never drains take_reports()
    // loses the oldest reports (counted) instead of growing memory. This
    // is also the single choke point every finished op passes, so the
    // per-stage metric taps live here: whatever the bench or test layer
    // does with the reports, the registry has already seen the meter.
    pub(super) fn push_report(&mut self, report: OpReport) {
        self.obs.inc(super::op_metric(report.opcode), 1);
        self.obs.inc(super::status_metric(report.status), 1);
        precursor_obs::observe_meter(&mut self.obs, &report.meter);
        self.trace(
            "report",
            super::op_metric(report.opcode),
            u64::from(report.client_id),
            report.status as u64,
        );
        if self.ingress.reports.len() >= self.config.max_buffered_reports {
            self.ingress.reports.pop_front();
            self.ingress.reports_dropped += 1;
            self.obs.inc("server.reports_dropped", 1);
        }
        self.ingress.reports.push_back(report);
    }
}
