//! Seal stage: turns a [`ReplyPlan`] into a sealed [`ReplyFrame`].
//!
//! Sealing consumes the client's next reply sequence number, advances the
//! per-session reply MAC chain, and stamps the Byzantine-evidence fields
//! (epoch, store-mutation sequence + digest) — so it must run in each
//! client's pop order, regardless of which shard executed the operation.
//! The stage's inputs are deliberately narrow: one [`SealCtx`], one
//! [`Session`], and the plan to seal.

use precursor_crypto::gcm;
use precursor_crypto::keys::Tag;
use precursor_sgx::enclave::Enclave;
use precursor_sim::meter::{Meter, Stage};
use precursor_sim::CostModel;

use crate::wire::{
    chain_input, payload_reply_nonce, reply_nonce, Opcode, ReplyControl, ReplyFrame, Status,
};

use super::exec::{EntryMeta, ReplyPlan};
use super::session::Session;

// The store-mutation evidence (rollback/fork detection) stamped into every
// sealed reply control — produced by `StoreExec::evidence()`.
#[derive(Debug, Clone, Copy)]
pub(super) struct StoreEvidence {
    pub(super) mutation_seq: u64,
    pub(super) state_digest: [u8; 16],
}

// The narrow slice of server state the seal stage borrows per reply: the
// enclave the control is sealed in, the cost model, the configured busy
// retry hint, and the store evidence snapshot.
pub(super) struct SealCtx<'a> {
    pub(super) enclave: &'a mut Enclave,
    pub(super) cost: &'a CostModel,
    pub(super) busy_retry_ns: u64,
    pub(super) evidence: StoreEvidence,
    /// This seal rides an already-open batched crypto pass of the
    /// client's sweep run (`Config::batched_sealing`): the fixed AES-GCM
    /// setup cycles were paid by the run's first reply, so only the
    /// per-byte work is charged here. The sealed bytes are identical
    /// either way — batching changes cost attribution, never ciphertext.
    pub(super) batched: bool,
}

// Seals one [`ReplyPlan`] into a [`ReplyFrame`], consuming the client's
// next reply sequence number and advancing its MAC chain. Must be called
// in the client's pop order.
pub(super) fn seal_plan(
    ctx: &mut SealCtx<'_>,
    session: &mut Session,
    opcode: Opcode,
    plan: ReplyPlan,
    meter: &mut Meter,
) -> ReplyFrame {
    match plan {
        ReplyPlan::Control { status, oid } => finish_reply(
            ctx,
            session,
            status,
            opcode,
            ReplyControl::basic(oid),
            Vec::new(),
            meter,
        ),
        ReplyPlan::Busy { oid } => {
            // A Status::Busy backpressure reply carrying the retry hint.
            let control = ReplyControl {
                retry_after_ns: ctx.busy_retry_ns,
                ..ReplyControl::basic(oid)
            };
            finish_reply(
                ctx,
                session,
                Status::Busy,
                opcode,
                control,
                Vec::new(),
                meter,
            )
        }
        ReplyPlan::NotMine { oid, hint } => {
            // A sealed routing redirect: the owner hint rides the
            // `retry_after_ns` field, which `chain_input` already binds
            // into the per-session MAC chain.
            let control = ReplyControl {
                retry_after_ns: hint,
                ..ReplyControl::basic(oid)
            };
            finish_reply(
                ctx,
                session,
                Status::NotMine,
                opcode,
                control,
                Vec::new(),
                meter,
            )
        }
        ReplyPlan::GetHit {
            entry,
            payload,
            mac,
            oid,
        } => ok_reply(
            ctx,
            session,
            opcode,
            oid,
            Some((entry, payload, mac)),
            meter,
        ),
        ReplyPlan::ServerEncGet { plain, oid } => {
            let session_key = session.session_key.clone();
            // The payload transport seal uses the same reply_seq the
            // control reply will consume, so peek it; finish_reply
            // increments it once.
            let seq = session.reply_seq;
            meter.charge(
                Stage::Enclave,
                ctx.cost.server_time(gcm_cycles(ctx, plain.len())),
            );
            let transport = gcm::seal(&session_key, &payload_reply_nonce(seq), &[], &plain);
            ctx.enclave
                .copy_across_boundary(transport.len(), meter, ctx.cost);
            finish_reply(
                ctx,
                session,
                Status::Ok,
                opcode,
                ReplyControl::basic(oid),
                transport,
                meter,
            )
        }
    }
}

// AES-GCM cycles for a pass over `len` bytes under the context's batching
// mode: a seal riding an open batched pass pays only the per-byte work —
// the fixed setup was charged to the run's first reply.
fn gcm_cycles(ctx: &SealCtx<'_>, len: usize) -> precursor_sim::time::Cycles {
    let full = ctx.cost.aes_gcm(len);
    if ctx.batched {
        precursor_sim::time::Cycles(full.0 - ctx.cost.aes_gcm_fixed.min(full.0))
    } else {
        full
    }
}

// Finalizes any reply inside the enclave: stamps the Byzantine-evidence
// fields (epoch, store seq + digest), advances the per-session reply MAC
// chain over the canonical bytes, seals the control, and consumes one
// reply sequence number.
fn finish_reply(
    ctx: &mut SealCtx<'_>,
    session: &mut Session,
    status: Status,
    opcode: Opcode,
    mut control: ReplyControl,
    payload: Vec<u8>,
    meter: &mut Meter,
) -> ReplyFrame {
    let seq = session.reply_seq;
    session.reply_seq += 1;
    control.epoch = session.epoch;
    control.store_seq = ctx.evidence.mutation_seq;
    control.store_digest = ctx.evidence.state_digest;
    control.chain = session
        .chain
        .advance(&chain_input(status, opcode, seq, &control));
    let control_bytes = control.encode();
    meter.charge(
        Stage::Enclave,
        ctx.cost.server_time(gcm_cycles(ctx, control_bytes.len())),
    );
    ctx.enclave
        .copy_across_boundary(control_bytes.len(), meter, ctx.cost);
    let sealed = gcm::seal(&session.session_key, &reply_nonce(seq), &[], &control_bytes);
    ReplyFrame {
        status,
        opcode,
        reply_seq: seq,
        sealed_control: sealed,
        payload,
    }
}

fn ok_reply(
    ctx: &mut SealCtx<'_>,
    session: &mut Session,
    opcode: Opcode,
    oid: u64,
    get_payload: Option<(EntryMeta, Vec<u8>, Tag)>,
    meter: &mut Meter,
) -> ReplyFrame {
    let (control, payload) = match get_payload {
        Some((entry, payload, mac)) => (
            ReplyControl {
                k_op: Some(entry.k_op),
                payload_nonce: Some(entry.payload_nonce),
                mac: Some(mac),
                ..ReplyControl::basic(oid)
            },
            payload,
        ),
        None => (ReplyControl::basic(oid), Vec::new()),
    };
    finish_reply(ctx, session, Status::Ok, opcode, control, payload, meter)
}
