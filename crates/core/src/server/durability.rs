//! Durability stage: the sealed mutation journal and the group-commit
//! reply gate.
//!
//! When a journal is attached ([`PrecursorServer::attach_journal`]), every
//! *applied* mutation — put, delete, revocation eviction — appends one
//! sealed record right after it executes, in execution order, and every
//! session admission/reconnect records the trusted window it established.
//! Records carry the post-apply store evidence (`mutation_seq` + running
//! state digest), so replay can verify bit-for-bit that it reconstructs
//! the same history ([`StoreError::ForkDetected`] otherwise).
//!
//! **Group commit & the reply gate.** Appends accumulate in the journal's
//! pending buffer; the [`GroupCommitPolicy`] decides when a sweep flushes
//! the group to durable bytes. A reply whose operation is not yet durable
//! (or, under replication, not yet quorum-acknowledged) must not reach the
//! client — otherwise a crash-failover could roll back a state the client
//! already observed, turning an honest recovery into a false
//! `RollbackDetected`. The gate therefore holds *every* reply WRITE
//! (mutations, and reads that may have observed uncommitted state) until
//! the journal sequence it was emitted under is committed, then releases
//! them FIFO. With [`GroupCommitPolicy::immediate`] and local commit the
//! flush happens inline with the append, the gate never closes, and the
//! emitted WRITE stream is byte-identical to an unjournaled server — which
//! is what keeps the seeded golden digest unchanged.
//!
//! **Commit authority.** Locally-durable mode (`attach_journal`) commits a
//! group the moment its flush succeeds. Replicated mode
//! (`attach_replicated_journal`) leaves commit to the replication layer,
//! which calls [`PrecursorServer::commit_journal_bytes`] once a quorum of
//! replicas acknowledged the flushed byte range (see `crate::replication`).

use std::collections::VecDeque;

use precursor_journal::{FlushDamage, GroupCommitPolicy, Journal, JournalRecord, JournalStats};
use precursor_rdma::faults::{DurableVerdict, FaultSite};
use precursor_sgx::counters::MonotonicCounter;
use precursor_sgx::sealing;
use precursor_sim::{CostModel, Cycles, Meter, Stage};

use crate::config::Config;
use crate::error::StoreError;
use crate::snapshot::{take, SnapshotBody, SnapshotEntry};
use crate::wire::{Opcode, Status};

use super::exec::{ReplyPlan, ValueStorage};
use super::seal::StoreEvidence;
use super::{lock_faults, PrecursorServer};

// Journal record kinds.
const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_EVICT: u8 = 3;
const KIND_SESSION: u8 = 4;

// One reply held back by the group-commit gate: the ring WRITEs of a
// sealed reply, tagged with the journal sequence that must commit before
// they may be posted.
#[derive(Debug)]
struct GatedReply {
    idx: usize,
    seq: u64,
    writes: Vec<(usize, Vec<u8>)>,
}

// Durability-stage state: the journal plus the commit/gate bookkeeping.
#[derive(Debug)]
pub(super) struct Durability {
    journal: Journal,
    // Replicated mode: commit authority lies with the replication layer
    // (commit_journal_bytes); local mode commits at flush.
    external_commit: bool,
    committed_seq: u64,
    // (durable-bytes end, last record seq) per flushed group — lets the
    // replication layer's byte-level acknowledgements map back to commit
    // sequence numbers. Pruned as commits advance.
    flush_marks: VecDeque<(u64, u64)>,
    gated: VecDeque<GatedReply>,
    // A damaged flush wedged the journal: the modelled process died
    // mid-write. Replies gated at that point are never released (their
    // clients time out), and nothing further is appended — recovery is the
    // only way forward.
    failed: bool,
    // Replication fan-out (number of replicas each flushed byte is
    // shipped to) — purely a cost-model input: the networking stage of
    // the per-op meter charges `fanout × segment-ship` cycles per sealed
    // byte. 0 for a locally-durable journal.
    fanout: usize,
}

/// What [`PrecursorServer::recover`] reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a sealed snapshot was unsealed and restored.
    pub snapshot_restored: bool,
    /// Journal records replayed (past the snapshot watermark).
    pub replayed: usize,
    /// Journal records skipped because the snapshot already covered them.
    pub skipped: usize,
    /// Whether trailing journal bytes (a torn tail or tampering) were
    /// truncated rather than replayed.
    pub truncated: bool,
    /// Byte length of the authentic journal prefix.
    pub valid_len: usize,
    /// Sequence number of the last authentic journal record (0 if none).
    pub journal_seq: u64,
    /// Mutation records queued for background catch-up instead of being
    /// replayed inline (0 for non-staged recovery). The server answers
    /// reads from its applied prefix while [`PrecursorServer::catchup_step`]
    /// drains them.
    pub catchup_pending: usize,
}

/// Result of [`PrecursorServer::compact_journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactOutcome {
    /// Nothing to compact: no journal, wedged, uncommitted or pending
    /// records, or no records past the previous cut.
    Skipped,
    /// The host damaged the tentative snapshot seal. The trusted counter
    /// was not advanced, the previous snapshot is still authoritative, and
    /// the journal is whole — recovery state is unchanged.
    Aborted,
    /// Snapshot committed and prefix truncated.
    Compacted {
        /// The sealed snapshot now anchoring recovery (store it where the
        /// old base snapshot lived).
        snapshot: Vec<u8>,
        /// Records removed from the durable stream.
        truncated_records: u64,
        /// The cut: first surviving record is `base_seq + 1`.
        base_seq: u64,
    },
    /// Snapshot committed but the process died before the truncate: the
    /// journal wedged whole. Recovery from (snapshot, full journal)
    /// reaches the same digest the truncated pair would.
    Wedged {
        /// The committed sealed snapshot.
        snapshot: Vec<u8>,
        /// Watermark the snapshot covers.
        base_seq: u64,
    },
}

// Mutation records queued by a staged recovery: the promoted replica
// serves reads from its applied prefix while `catchup_step` drains these
// in order. At-most-once windows and session records were applied eagerly,
// so retransmissions of pre-crash operations re-acknowledge from the
// cached window instead of re-executing against not-yet-replayed state.
#[derive(Debug, Default)]
pub(super) struct CatchupState {
    records: VecDeque<JournalRecord>,
}

impl PrecursorServer {
    /// Attaches a locally-durable sealed journal: every applied mutation is
    /// journaled, groups flush per `policy`, and a group commits the moment
    /// its flush succeeds. The journal key is derived for a fresh epoch
    /// drawn from the trusted monotonic `counter`, so an older epoch's byte
    /// stream can never be replayed into this one. Returns the epoch.
    pub fn attach_journal(
        &mut self,
        policy: GroupCommitPolicy,
        counter: &mut MonotonicCounter,
    ) -> u64 {
        self.attach(policy, counter, false)
    }

    /// Attaches a journal whose commit authority is the replication layer:
    /// flushed groups stay uncommitted (replies gated) until
    /// [`commit_journal_bytes`](Self::commit_journal_bytes) acknowledges
    /// the byte range — quorum acknowledgement in `crate::replication`.
    pub fn attach_replicated_journal(
        &mut self,
        policy: GroupCommitPolicy,
        counter: &mut MonotonicCounter,
    ) -> u64 {
        self.attach(policy, counter, true)
    }

    fn attach(
        &mut self,
        policy: GroupCommitPolicy,
        counter: &mut MonotonicCounter,
        external_commit: bool,
    ) -> u64 {
        let epoch = counter.increment();
        let key = sealing::journal_key(&self.sealing_key(), epoch);
        self.durability = Some(Durability {
            journal: Journal::new(key, epoch, policy),
            external_commit,
            committed_seq: 0,
            flush_marks: VecDeque::new(),
            gated: VecDeque::new(),
            failed: false,
            fanout: 0,
        });
        epoch
    }

    /// Sets the replication fan-out the cost model charges for: each
    /// sealed journal byte is shipped to this many replicas (networking
    /// stage of the op meter). The replication layer calls this at
    /// cluster construction and after every failover; a locally-durable
    /// journal keeps 0.
    pub fn set_replication_fanout(&mut self, fanout: usize) {
        if let Some(d) = self.durability.as_mut() {
            d.fanout = fanout;
        }
    }

    /// The attached journal's epoch, if any.
    pub fn journal_epoch(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.journal.epoch())
    }

    /// Sequence number of the most recently journaled record (0 when no
    /// journal is attached or nothing was appended).
    pub fn journal_last_seq(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.journal.last_seq())
    }

    /// Highest committed journal sequence number — replies up to it have
    /// been released to clients.
    pub fn journal_committed_seq(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.committed_seq)
    }

    /// The journal's durable byte stream (what replication ships and what
    /// survives a crash), when a journal is attached.
    pub fn journal_durable(&self) -> Option<&[u8]> {
        self.durability.as_ref().map(|d| d.journal.durable())
    }

    /// Journal flush/byte counters, when a journal is attached.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.durability.as_ref().map(|d| d.journal.stats())
    }

    /// MAC-chain value at the journal head — the anchor a snapshot sealed
    /// right now would carry for authenticating the tail behind it.
    pub fn journal_chain(&self) -> Option<[u8; 16]> {
        self.durability.as_ref().map(|d| d.journal.chain())
    }

    /// Sequence number of the compaction cut: records at or before it were
    /// truncated behind a sealed snapshot (0 = never compacted).
    pub fn journal_base_seq(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.journal.base_seq())
    }

    /// MAC-chain anchor at the compaction cut (genesis when uncompacted).
    pub fn journal_base_chain(&self) -> Option<[u8; 16]> {
        self.durability.as_ref().map(|d| d.journal.base_chain())
    }

    /// Bytes removed from the durable stream by compaction. Byte offsets
    /// exchanged with the replication layer stay logical: the surviving
    /// suffix covers `[trimmed, trimmed + durable.len())` of the epoch's
    /// whole stream.
    pub fn journal_trimmed_bytes(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.journal.trimmed_bytes())
    }

    /// Logical end offset of the durable stream (`trimmed + durable len`).
    pub fn journal_durable_end(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.journal.durable_end())
    }

    /// Whether a damaged flush wedged the journal (the modelled process
    /// died mid-write; only recovery makes sense afterwards).
    pub fn journal_wedged(&self) -> bool {
        self.durability.as_ref().is_some_and(|d| d.failed)
    }

    /// Replies currently held by the group-commit gate.
    pub fn gated_replies(&self) -> usize {
        self.durability.as_ref().map_or(0, |d| d.gated.len())
    }

    /// Acknowledges that the first `acked` durable journal bytes are
    /// replicated to a quorum: commits every flushed group inside that
    /// range and releases its gated replies. The replication layer's
    /// commit callback (no-op for locally-committed journals with nothing
    /// externally gated).
    pub fn commit_journal_bytes(&mut self, acked: u64) {
        if let Some(d) = self.durability.as_mut() {
            if d.failed {
                return;
            }
            while let Some(&(end, seq)) = d.flush_marks.front() {
                if end > acked {
                    break;
                }
                d.committed_seq = d.committed_seq.max(seq);
                d.flush_marks.pop_front();
            }
        }
        self.release_gated();
    }

    /// Compacts the journal: seals a snapshot covering the whole applied
    /// state, advances the trusted `counter` to commit it, and truncates
    /// the journal prefix behind the committed watermark. Two-phase:
    ///
    /// 1. **Tentative seal** at `counter.read() + 1` — the counter is NOT
    ///    advanced yet. The host may damage the blob (`SnapshotSeal`
    ///    fault); the enclave validates what was persisted and, on damage,
    ///    aborts with the previous snapshot still authoritative and the
    ///    journal whole ([`CompactOutcome::Aborted`]). Recovery state is
    ///    unchanged.
    /// 2. **Commit** — `counter.increment()` makes the new blob the only
    ///    unsealable snapshot.
    /// 3. **Truncate** through the [`FaultSite::CompactTruncate`] crash
    ///    point. A damage verdict there models the process dying between
    ///    seal and truncate: the journal wedges untruncated
    ///    ([`CompactOutcome::Wedged`]), and recovery from the committed
    ///    snapshot plus the *whole* journal reaches the same digest the
    ///    truncated pair would.
    ///
    /// Only a quiescent journal compacts: nothing pending, every record
    /// committed (locally or by quorum), and at least one record past the
    /// previous cut. Anything else is [`CompactOutcome::Skipped`].
    pub fn compact_journal(&mut self, counter: &mut MonotonicCounter) -> CompactOutcome {
        let Some(d) = self.durability.as_ref() else {
            return CompactOutcome::Skipped;
        };
        if d.failed
            || d.journal.pending_records() > 0
            || d.journal.last_seq() == d.journal.base_seq()
            || d.committed_seq < d.journal.last_seq()
        {
            return CompactOutcome::Skipped;
        }
        let upto = d.committed_seq;
        let version = counter.read() + 1;
        let blob = self.snapshot_at(version);
        let key = self.sealing_key();
        let valid = sealing::unseal(&key, version, &blob)
            .ok()
            .and_then(|b| SnapshotBody::decode(&b).ok())
            .is_some();
        if !valid {
            self.obs.inc("journal.compaction_aborts", 1);
            self.trace("journal", "compact_abort", upto, 0);
            return CompactOutcome::Aborted;
        }
        let _ = counter.increment();
        let durable_len = self
            .durability
            .as_ref()
            .map_or(0, |d| d.journal.durable().len());
        let verdict = match &self.faults {
            Some(f) => lock_faults(f).on_durable_write(FaultSite::CompactTruncate, durable_len),
            None => DurableVerdict::Complete,
        };
        let d = self.durability.as_mut().expect("checked above");
        if !matches!(verdict, DurableVerdict::Complete) {
            d.failed = true;
            self.obs.inc("journal.compaction_wedges", 1);
            self.trace("journal", "compact_wedge", upto, 0);
            return CompactOutcome::Wedged {
                snapshot: blob,
                base_seq: upto,
            };
        }
        let truncated_records = d.journal.truncate_prefix(upto);
        let base_seq = d.journal.base_seq();
        self.obs.inc("journal.compactions", 1);
        self.obs.inc("journal.truncated_records", truncated_records);
        self.trace("journal", "compact", upto, truncated_records);
        CompactOutcome::Compacted {
            snapshot: blob,
            truncated_records,
            base_seq,
        }
    }

    // Appends one sealed record; in immediate local mode the flush (and
    // therefore the commit) happens inline, keeping the reply gate open.
    fn journal_append(&mut self, kind: u8, body: &[u8]) {
        let now = self.ingress.polls;
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        if d.failed {
            return;
        }
        let seq = d.journal.append(kind, body, now);
        self.trace("journal", "append", seq, kind as u64);
        let d = self.durability.as_ref().expect("just appended");
        if !d.external_commit && d.journal.policy().max_records <= 1 {
            self.flush_journal();
        }
    }

    // Journal tap for executed operations (both sweep paths call it right
    // after `execute_plan`, in execution order). Reads and non-applied
    // mutations leave no record.
    pub(super) fn journal_mutation(
        &mut self,
        idx: usize,
        opcode: Opcode,
        status: Status,
        key: &[u8],
        oid: u64,
        meter: &mut Meter,
    ) {
        if self.durability.is_none() || status != Status::Ok {
            return;
        }
        match opcode {
            Opcode::Put => {
                let entry = self.export_entry(key).expect("applied put leaves an entry");
                let body = encode_put(
                    idx as u32,
                    oid,
                    self.store.storage_seq,
                    self.store.evidence(),
                    &entry,
                );
                self.journal_append(KIND_PUT, &body);
                self.charge_journal_record(body.len(), meter);
            }
            Opcode::Delete => {
                let body = encode_delete(idx as u32, oid, self.store.evidence(), key);
                self.journal_append(KIND_DELETE, &body);
                self.charge_journal_record(body.len(), meter);
            }
            Opcode::Get => {}
        }
    }

    // Durability cost tap: what sealing one journal record and making it
    // durable costs the operation that appended it. Enclave: the AES-GCM
    // pass over the body plus the chain hash. ServerOverhead: the durable
    // append, its fixed (syscall-class) cost amortised over the
    // group-commit batch. Network: shipping the sealed record to each
    // replica in the fan-out. Pure meter charges — no RNG, no digested
    // observable — so seeded golden digests are unchanged.
    fn charge_journal_record(&self, body_len: usize, meter: &mut Meter) {
        let Some(d) = self.durability.as_ref() else {
            return;
        };
        let cost = &self.cost;
        // header 13 + GCM tag 16 + trailing chain tag 16
        let record_len = body_len + 45;
        let seal =
            cost.aes_gcm(body_len).0 + cost.sha256(body_len + 25).0 + cost.journal_seal_fixed;
        meter.charge(Stage::Enclave, cost.server_time(Cycles(seal)));
        let batch = d.journal.policy().max_records.max(1) as u64;
        let write = cost.durable_write_fixed / batch
            + (record_len as f64 * cost.durable_write_per_byte).round() as u64;
        meter.charge(Stage::ServerOverhead, cost.server_time(Cycles(write)));
        if d.fanout > 0 {
            let ship =
                (d.fanout as f64 * record_len as f64 * cost.segment_ship_per_byte).round() as u64;
            meter.charge(Stage::Network, cost.server_time(Cycles(ship)));
        }
    }

    // Journal tap for session admissions and reconnects: records the
    // trusted window (expected_oid, last_status, epoch) the session was
    // established with, so failover reconstructs the at-most-once state.
    pub(super) fn journal_session(&mut self, client_id: u32) {
        if self.durability.is_none() {
            return;
        }
        let s = &self.sessions.list[client_id as usize];
        let body = encode_session(client_id, s.expected_oid, s.last_status, s.epoch);
        self.journal_append(KIND_SESSION, &body);
    }

    // Journal tap for revocation evictions (one record per evicted key).
    pub(super) fn journal_evict(&mut self, key: &[u8]) {
        if self.durability.is_none() {
            return;
        }
        let body = encode_evict(self.store.evidence(), key);
        self.journal_append(KIND_EVICT, &body);
    }

    // Flushes the pending group through the durable-write fault site. A
    // torn or corrupted flush wedges the journal and fails the server's
    // durability (replies gated at that point are never released — the
    // modelled process is dead).
    pub(super) fn flush_journal(&mut self) {
        let pending = match self.durability.as_ref() {
            Some(d) if !d.failed && d.journal.pending_bytes() > 0 => d.journal.pending_bytes(),
            _ => return,
        };
        let damage = match &self.faults {
            Some(f) => match lock_faults(f).on_durable_write(FaultSite::JournalFlush, pending) {
                DurableVerdict::Complete => FlushDamage::None,
                DurableVerdict::Torn(keep) => FlushDamage::Torn(keep),
                DurableVerdict::Corrupt(bit) => FlushDamage::CorruptBit(bit),
            },
            None => FlushDamage::None,
        };
        let d = self.durability.as_mut().expect("checked above");
        let Some((offset, written)) = d.journal.flush_with(damage) else {
            return;
        };
        let last_seq = d.journal.last_seq();
        if d.journal.is_wedged() {
            d.failed = true;
        } else if d.external_commit {
            d.flush_marks.push_back((offset + written as u64, last_seq));
        } else {
            d.committed_seq = last_seq;
        }
        self.obs.inc("journal.group_commit_flushes", 1);
        self.obs.inc("journal.bytes_sealed", written as u64);
        self.trace("journal", "flush", offset, written as u64);
    }

    // End-of-sweep durability work: flush when the group-commit policy
    // calls for it, then release whatever the commit point now covers.
    pub(super) fn durability_sweep(&mut self) {
        let Some(d) = self.durability.as_ref() else {
            return;
        };
        if !d.failed && d.journal.should_flush(self.ingress.polls) {
            self.flush_journal();
        }
        self.release_gated();
    }

    // Posts a reply's ring WRITEs, or holds them behind the group-commit
    // gate when the journal has uncommitted records (or earlier replies
    // are already held — per-client WRITE order must be preserved). With
    // no journal attached this is exactly the ungated post loop.
    pub(super) fn post_or_gate(&mut self, idx: usize, writes: Vec<(usize, Vec<u8>)>) {
        if writes.is_empty() {
            return;
        }
        let gate = match &self.durability {
            Some(d) => d.failed || d.journal.last_seq() > d.committed_seq || !d.gated.is_empty(),
            None => false,
        };
        if gate {
            let d = self.durability.as_mut().expect("gate implies durability");
            let seq = d.journal.last_seq();
            d.gated.push_back(GatedReply { idx, seq, writes });
            return;
        }
        let port = self.ingress.ports[idx].as_mut().expect("live port");
        let rkey = port.reply_ring_rkey;
        if self.config.fast_path_enabled() && writes.len() > 1 {
            // Fast path: chain the sweep's WRITEs behind one doorbell.
            // Delivery, fault injection, and per-WRITE accounting are
            // identical to the unrolled loop below.
            let _ = port.qp.post_write_coalesced(rkey, &writes, false);
        } else {
            for (off, chunk) in &writes {
                let _ = port.qp.post_write(rkey, *off, chunk, false);
            }
        }
    }

    // Releases gated replies whose journal sequence is committed, FIFO
    // (sequence tags are non-decreasing in gate order, so FIFO release
    // preserves both per-client and global WRITE order).
    pub(super) fn release_gated(&mut self) {
        loop {
            let Some(d) = self.durability.as_mut() else {
                return;
            };
            if d.failed {
                return;
            }
            match d.gated.front() {
                Some(g) if g.seq <= d.committed_seq => {}
                _ => return,
            }
            let g = d.gated.pop_front().expect("checked front");
            // A port revoked while its reply sat in the gate just drops
            // the WRITEs — the client is gone.
            if let Some(Some(port)) = self.ingress.ports.get_mut(g.idx) {
                let rkey = port.reply_ring_rkey;
                for (off, chunk) in &g.writes {
                    let _ = port.qp.post_write(rkey, *off, chunk, false);
                }
            }
        }
    }

    // Routes a sealed durable blob (snapshot seal) through the
    // fault-injection layer: a crash mid-write tears it, a corrupting
    // host flips a bit. Used by `crate::snapshot`.
    pub(crate) fn apply_durable_fault(&mut self, site: FaultSite, blob: &mut Vec<u8>) {
        let Some(f) = &self.faults else {
            return;
        };
        match lock_faults(f).on_durable_write(site, blob.len()) {
            DurableVerdict::Complete => {}
            DurableVerdict::Torn(keep) => blob.truncate(keep),
            DurableVerdict::Corrupt(bit) => {
                if !blob.is_empty() {
                    let b = bit % (blob.len() * 8);
                    blob[b / 8] ^= 1 << (b % 8);
                }
            }
        }
    }

    /// Reconstructs a server from a sealed snapshot (optional) plus the
    /// durable journal byte stream of the epoch `epoch_counter` currently
    /// designates. The snapshot is unsealed at `snap_counter`'s current
    /// value (rollback detection, as in [`restore`](Self::restore)); the
    /// journal's authentic prefix is established by its MAC chain — a torn
    /// tail is truncated, never replayed — and records past the snapshot's
    /// watermark are replayed in order, re-deriving the store evidence and
    /// checking it against each record's sealed evidence.
    ///
    /// The recovered server has no journal attached; a promoted node opens
    /// a fresh epoch with [`attach_journal`](Self::attach_journal) /
    /// [`attach_replicated_journal`](Self::attach_replicated_journal).
    ///
    /// # Errors
    ///
    /// [`StoreError::SnapshotRejected`] for a rolled-back or damaged
    /// snapshot (retry without it to recover from the journal alone);
    /// [`StoreError::ForkDetected`] when replay derives different evidence
    /// than a record sealed — the journal came from a forked or
    /// rolled-back history; [`StoreError::MalformedFrame`] for records
    /// that do not parse.
    pub fn recover(
        config: Config,
        cost: &CostModel,
        snapshot: Option<&[u8]>,
        snap_counter: &MonotonicCounter,
        journal_bytes: &[u8],
        epoch_counter: &MonotonicCounter,
    ) -> Result<(PrecursorServer, RecoveryReport), StoreError> {
        Self::recover_inner(
            config,
            cost,
            snapshot,
            snap_counter,
            journal_bytes,
            None,
            epoch_counter,
            false,
        )
    }

    /// Like [`recover`](Self::recover) but for a compacted journal: the
    /// durable bytes are a mid-stream suffix starting at the compaction
    /// cut `base_seq`/`base_chain`. When `base_seq > 0` the snapshot is
    /// mandatory and must cover at least the cut under this epoch —
    /// otherwise the truncated records are unrecoverable and the pair is
    /// rejected with [`StoreError::SnapshotRejected`].
    #[allow(clippy::too_many_arguments)]
    pub fn recover_with_base(
        config: Config,
        cost: &CostModel,
        snapshot: Option<&[u8]>,
        snap_counter: &MonotonicCounter,
        journal_bytes: &[u8],
        base_seq: u64,
        base_chain: [u8; 16],
        epoch_counter: &MonotonicCounter,
    ) -> Result<(PrecursorServer, RecoveryReport), StoreError> {
        Self::recover_inner(
            config,
            cost,
            snapshot,
            snap_counter,
            journal_bytes,
            Some((base_seq, base_chain)),
            epoch_counter,
            false,
        )
    }

    /// Staged variant of [`recover_with_base`](Self::recover_with_base):
    /// session records and at-most-once windows are applied eagerly (so
    /// retransmissions of pre-crash operations re-acknowledge instead of
    /// re-executing), but data mutations are queued. The caller serves
    /// reads immediately from the applied prefix — the pipeline answers
    /// mutations with `Status::Busy` while [`in_catchup`](Self::in_catchup)
    /// — and drains the queue with [`catchup_step`](Self::catchup_step).
    #[allow(clippy::too_many_arguments)]
    pub fn recover_staged(
        config: Config,
        cost: &CostModel,
        snapshot: Option<&[u8]>,
        snap_counter: &MonotonicCounter,
        journal_bytes: &[u8],
        base_seq: u64,
        base_chain: [u8; 16],
        epoch_counter: &MonotonicCounter,
    ) -> Result<(PrecursorServer, RecoveryReport), StoreError> {
        Self::recover_inner(
            config,
            cost,
            snapshot,
            snap_counter,
            journal_bytes,
            Some((base_seq, base_chain)),
            epoch_counter,
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn recover_inner(
        config: Config,
        cost: &CostModel,
        snapshot: Option<&[u8]>,
        snap_counter: &MonotonicCounter,
        journal_bytes: &[u8],
        base: Option<(u64, [u8; 16])>,
        epoch_counter: &MonotonicCounter,
        staged: bool,
    ) -> Result<(PrecursorServer, RecoveryReport), StoreError> {
        let mut server = PrecursorServer::new(config, cost);
        let epoch = epoch_counter.read();
        let (base_seq, base_chain) =
            base.unwrap_or_else(|| (0, precursor_journal::genesis_chain(epoch)));
        let mut snapshot_restored = false;
        let mut watermark = 0u64;
        if let Some(sealed) = snapshot {
            let key = server.sealing_key();
            let body_bytes = sealing::unseal(&key, snap_counter.read(), sealed)
                .map_err(|_| StoreError::SnapshotRejected)?;
            let body = SnapshotBody::decode(&body_bytes)?;
            if body.mode != server.config().mode {
                return Err(StoreError::MalformedFrame);
            }
            // The watermark only applies when the snapshot was sealed
            // under this journal epoch; a snapshot from before the epoch
            // opened covers none of its records.
            if body.journal_epoch == epoch {
                watermark = body.journal_seq;
            }
            server.restore_body(body)?;
            snapshot_restored = true;
        }
        // A mid-stream suffix is only recoverable when a snapshot covers
        // everything behind the cut under this very epoch.
        if base_seq > 0 && (!snapshot_restored || watermark < base_seq) {
            return Err(StoreError::SnapshotRejected);
        }
        let jkey = sealing::journal_key(&server.sealing_key(), epoch);
        let recovered = precursor_journal::recover_from(&jkey, base_seq, base_chain, journal_bytes);
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        let mut queue = VecDeque::new();
        for record in &recovered.records {
            if record.seq <= watermark {
                skipped += 1;
                continue;
            }
            if staged {
                server.stage_record(record, &mut queue)?;
            } else {
                server.replay_record(record)?;
            }
            replayed += 1;
        }
        let catchup_pending = queue.len();
        if catchup_pending > 0 {
            server.catchup = Some(CatchupState { records: queue });
        }
        Ok((
            server,
            RecoveryReport {
                snapshot_restored,
                replayed,
                skipped,
                truncated: recovered.truncated,
                valid_len: recovered.valid_len,
                journal_seq: recovered.records.last().map_or(0, |r| r.seq),
                catchup_pending,
            },
        ))
    }

    /// Whether a staged recovery still has queued mutation records: reads
    /// are served from the applied prefix, mutations answer `Busy`.
    pub fn in_catchup(&self) -> bool {
        self.catchup.is_some()
    }

    /// Queued catch-up records not yet applied.
    pub fn catchup_remaining(&self) -> usize {
        self.catchup.as_ref().map_or(0, |c| c.records.len())
    }

    /// Applies up to `budget` queued catch-up records in order, verifying
    /// each record's sealed evidence exactly as inline replay would. When
    /// the queue drains the server leaves catch-up and mutations flow
    /// again.
    ///
    /// # Errors
    ///
    /// Same as [`recover`](Self::recover) replay:
    /// [`StoreError::ForkDetected`] on evidence divergence,
    /// [`StoreError::MalformedFrame`] on undecodable records.
    pub fn catchup_step(&mut self, budget: usize) -> Result<usize, StoreError> {
        let mut applied = 0usize;
        while applied < budget {
            let Some(record) = self.catchup.as_mut().and_then(|c| c.records.pop_front()) else {
                break;
            };
            self.apply_catchup_record(&record)?;
            applied += 1;
        }
        if self.catchup.as_ref().is_some_and(|c| c.records.is_empty()) {
            self.catchup = None;
        }
        Ok(applied)
    }

    // Catch-up reply gate: while a staged recovery is still draining its
    // queue, only reads execute (served from the verified applied prefix —
    // never beyond it); mutations answer `Busy` exactly like quota
    // backpressure, so the client retries once catch-up finishes.
    // Retransmissions of pre-crash operations never reach this gate: their
    // at-most-once windows were restored eagerly, so validation
    // re-acknowledges them from the cached status. Returns the substitute
    // execution result for intercepted operations.
    pub(super) fn catchup_gate(
        &mut self,
        opcode: Opcode,
        oid: u64,
    ) -> Option<(Status, usize, ReplyPlan)> {
        if !self.in_catchup() {
            return None;
        }
        if opcode == Opcode::Get {
            self.obs.inc("replica.catchup_reads_served", 1);
            return None;
        }
        self.obs.inc("replica.catchup_mutations_deferred", 1);
        Some((Status::Busy, 0, ReplyPlan::Busy { oid }))
    }

    // Staged recovery: apply the at-most-once window / session effects of
    // one record eagerly, queueing its data mutation for catchup_step.
    fn stage_record(
        &mut self,
        record: &JournalRecord,
        queue: &mut VecDeque<JournalRecord>,
    ) -> Result<(), StoreError> {
        match record.kind {
            KIND_PUT => {
                let (client_id, oid, _storage_seq, _ev, _entry) = decode_put(&record.body)?;
                self.replay_window(client_id, oid);
                queue.push_back(record.clone());
            }
            KIND_DELETE => {
                let (client_id, oid, _ev, _key) = decode_delete(&record.body)?;
                self.replay_window(client_id, oid);
                queue.push_back(record.clone());
            }
            KIND_EVICT => queue.push_back(record.clone()),
            KIND_SESSION => self.replay_record(record)?,
            _ => return Err(StoreError::MalformedFrame),
        }
        Ok(())
    }

    // Data-only replay for catch-up: identical to `replay_record` except
    // the at-most-once window was already re-established eagerly at
    // staged recovery, so it is not touched again.
    fn apply_catchup_record(&mut self, record: &JournalRecord) -> Result<(), StoreError> {
        match record.kind {
            KIND_PUT => {
                let (_client_id, _oid, storage_seq, ev, entry) = decode_put(&record.body)?;
                self.store.bump_mutation(Opcode::Put, &entry.key);
                self.check_evidence(&ev)?;
                self.install_entry(entry)?;
                self.store.storage_seq = storage_seq;
            }
            KIND_DELETE => {
                let (_client_id, _oid, ev, key) = decode_delete(&record.body)?;
                self.replay_remove(&key)?;
                self.check_evidence(&ev)?;
            }
            KIND_EVICT => {
                let (ev, key) = decode_evict(&record.body)?;
                self.replay_remove(&key)?;
                self.check_evidence(&ev)?;
            }
            KIND_SESSION => {}
            _ => return Err(StoreError::MalformedFrame),
        }
        Ok(())
    }

    // Applies one authenticated journal record. Mutations re-derive the
    // store evidence exactly as the original execution did and compare it
    // to the record's sealed post-apply evidence — any divergence means
    // the journal belongs to a different history (fork or rollback).
    fn replay_record(&mut self, record: &JournalRecord) -> Result<(), StoreError> {
        match record.kind {
            KIND_PUT => {
                let (client_id, oid, storage_seq, ev, entry) = decode_put(&record.body)?;
                self.store.bump_mutation(Opcode::Put, &entry.key);
                self.check_evidence(&ev)?;
                self.install_entry(entry)?;
                self.store.storage_seq = storage_seq;
                self.replay_window(client_id, oid);
            }
            KIND_DELETE => {
                let (client_id, oid, ev, key) = decode_delete(&record.body)?;
                self.replay_remove(&key)?;
                self.check_evidence(&ev)?;
                self.replay_window(client_id, oid);
            }
            KIND_EVICT => {
                let (ev, key) = decode_evict(&record.body)?;
                self.replay_remove(&key)?;
                self.check_evidence(&ev)?;
            }
            KIND_SESSION => {
                let (client_id, expected_oid, last_status, epoch) = decode_session(&record.body)?;
                let idx = client_id as usize;
                if self.sessions.saved.len() <= idx {
                    self.sessions.saved.resize(idx + 1, (1, Status::Ok, 1));
                }
                self.sessions.saved[idx] = (expected_oid, last_status, epoch);
            }
            _ => return Err(StoreError::MalformedFrame),
        }
        Ok(())
    }

    // Replays a removal (delete or eviction): the key must exist — its
    // absence means the journal diverged from the state it claims to
    // extend.
    fn replay_remove(&mut self, key: &[u8]) -> Result<(), StoreError> {
        let (removed, _stats) = self.store.table.remove_tracked(&key.to_vec());
        let Some(entry) = removed else {
            return Err(StoreError::ForkDetected);
        };
        if let ValueStorage::Untrusted(range) = entry.storage {
            self.store
                .release_range(&mut self.adversary, entry.client_id, range);
        }
        self.store.bump_mutation(Opcode::Delete, key);
        Ok(())
    }

    fn check_evidence(&self, ev: &StoreEvidence) -> Result<(), StoreError> {
        if self.store.mutation_seq != ev.mutation_seq || self.store.state_digest != ev.state_digest
        {
            return Err(StoreError::ForkDetected);
        }
        Ok(())
    }

    // Replayed mutations re-establish the issuing client's at-most-once
    // window: the operation executed, so the enclave expects the next oid
    // and would re-acknowledge (never re-apply) a retransmission.
    fn replay_window(&mut self, client_id: u32, oid: u64) {
        let idx = client_id as usize;
        if self.sessions.saved.len() <= idx {
            self.sessions.saved.resize(idx + 1, (1, Status::Ok, 1));
        }
        let s = &mut self.sessions.saved[idx];
        s.0 = oid + 1;
        s.1 = Status::Ok;
    }
}

// --- record body codecs ---

fn encode_evidence(out: &mut Vec<u8>, ev: &StoreEvidence) {
    out.extend_from_slice(&ev.mutation_seq.to_le_bytes());
    out.extend_from_slice(&ev.state_digest);
}

fn decode_evidence(buf: &[u8], pos: &mut usize) -> Result<StoreEvidence, StoreError> {
    let mutation_seq = u64::from_le_bytes(take(buf, pos, 8)?.try_into().expect("8"));
    let state_digest: [u8; 16] = take(buf, pos, 16)?.try_into().expect("16");
    Ok(StoreEvidence {
        mutation_seq,
        state_digest,
    })
}

fn encode_put(
    client_id: u32,
    oid: u64,
    storage_seq: u64,
    ev: StoreEvidence,
    entry: &SnapshotEntry,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(48 + entry.key.len() + entry.stored_bytes.len() + 64);
    out.extend_from_slice(&client_id.to_le_bytes());
    out.extend_from_slice(&oid.to_le_bytes());
    out.extend_from_slice(&storage_seq.to_le_bytes());
    encode_evidence(&mut out, &ev);
    entry.encode_into(&mut out);
    out
}

type PutRecord = (u32, u64, u64, StoreEvidence, SnapshotEntry);

fn decode_put(body: &[u8]) -> Result<PutRecord, StoreError> {
    let mut pos = 0usize;
    let client_id = u32::from_le_bytes(take(body, &mut pos, 4)?.try_into().expect("4"));
    let oid = u64::from_le_bytes(take(body, &mut pos, 8)?.try_into().expect("8"));
    let storage_seq = u64::from_le_bytes(take(body, &mut pos, 8)?.try_into().expect("8"));
    let ev = decode_evidence(body, &mut pos)?;
    let entry = SnapshotEntry::decode_from(body, &mut pos)?;
    if pos != body.len() {
        return Err(StoreError::MalformedFrame);
    }
    Ok((client_id, oid, storage_seq, ev, entry))
}

fn encode_delete(client_id: u32, oid: u64, ev: StoreEvidence, key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(38 + key.len());
    out.extend_from_slice(&client_id.to_le_bytes());
    out.extend_from_slice(&oid.to_le_bytes());
    encode_evidence(&mut out, &ev);
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
    out
}

fn decode_delete(body: &[u8]) -> Result<(u32, u64, StoreEvidence, Vec<u8>), StoreError> {
    let mut pos = 0usize;
    let client_id = u32::from_le_bytes(take(body, &mut pos, 4)?.try_into().expect("4"));
    let oid = u64::from_le_bytes(take(body, &mut pos, 8)?.try_into().expect("8"));
    let ev = decode_evidence(body, &mut pos)?;
    let key_len = u16::from_le_bytes(take(body, &mut pos, 2)?.try_into().expect("2")) as usize;
    let key = take(body, &mut pos, key_len)?.to_vec();
    if pos != body.len() {
        return Err(StoreError::MalformedFrame);
    }
    Ok((client_id, oid, ev, key))
}

fn encode_evict(ev: StoreEvidence, key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(26 + key.len());
    encode_evidence(&mut out, &ev);
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
    out
}

fn decode_evict(body: &[u8]) -> Result<(StoreEvidence, Vec<u8>), StoreError> {
    let mut pos = 0usize;
    let ev = decode_evidence(body, &mut pos)?;
    let key_len = u16::from_le_bytes(take(body, &mut pos, 2)?.try_into().expect("2")) as usize;
    let key = take(body, &mut pos, key_len)?.to_vec();
    if pos != body.len() {
        return Err(StoreError::MalformedFrame);
    }
    Ok((ev, key))
}

fn encode_session(client_id: u32, expected_oid: u64, last_status: Status, epoch: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.extend_from_slice(&client_id.to_le_bytes());
    out.extend_from_slice(&expected_oid.to_le_bytes());
    out.push(last_status as u8);
    out.extend_from_slice(&epoch.to_le_bytes());
    out
}

fn decode_session(body: &[u8]) -> Result<(u32, u64, Status, u32), StoreError> {
    let mut pos = 0usize;
    let client_id = u32::from_le_bytes(take(body, &mut pos, 4)?.try_into().expect("4"));
    let expected_oid = u64::from_le_bytes(take(body, &mut pos, 8)?.try_into().expect("8"));
    let last_status =
        Status::from_u8(take(body, &mut pos, 1)?[0]).ok_or(StoreError::MalformedFrame)?;
    let epoch = u32::from_le_bytes(take(body, &mut pos, 4)?.try_into().expect("4"));
    if pos != body.len() {
        return Err(StoreError::MalformedFrame);
    }
    Ok((client_id, expected_oid, last_status, epoch))
}
