//! Fuzz-style property tests of the wire codecs: arbitrary bytes must never
//! panic the decoders, and valid frames survive mutation detection.
//! Driven by seeded loops over the in-repo deterministic RNG.

use precursor::wire::{ReplyControl, ReplyFrame, RequestControl, RequestFrame};
use precursor_crypto::keys::{Key256, Nonce12, Nonce8, Tag};
use precursor_sim::rng::SimRng;

const CASES: usize = 512;

fn random_bytes(rng: &mut SimRng, max_len: u64) -> Vec<u8> {
    let mut v = vec![0u8; rng.gen_range(max_len) as usize];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn request_decode_never_panics() {
    let mut rng = SimRng::seed_from(0xf022);
    for _ in 0..CASES {
        let bytes = random_bytes(&mut rng, 512);
        let _ = RequestFrame::decode(&bytes);
    }
}

#[test]
fn reply_decode_never_panics() {
    let mut rng = SimRng::seed_from(0xf123);
    for _ in 0..CASES {
        let bytes = random_bytes(&mut rng, 512);
        let _ = ReplyFrame::decode(&bytes);
    }
}

#[test]
fn control_decoders_never_panic() {
    let mut rng = SimRng::seed_from(0xf224);
    for _ in 0..CASES {
        let bytes = random_bytes(&mut rng, 256);
        let _ = RequestControl::decode(&bytes);
        let _ = ReplyControl::decode(&bytes);
    }
}

#[test]
fn truncated_valid_frames_are_rejected_not_panicking() {
    let mut rng = SimRng::seed_from(0xf325);
    for _ in 0..CASES {
        let frame = RequestFrame {
            opcode: precursor::wire::Opcode::Put,
            client_id: 3,
            iv: Nonce12::from_counter(9),
            sealed_control: random_bytes(&mut rng, 100),
            mac: Tag::from_bytes([5; 16]),
            payload: random_bytes(&mut rng, 200),
        };
        let bytes = frame.encode();
        // any strict prefix must fail decoding
        let cut = rng.gen_range(bytes.len() as u64) as usize;
        assert!(RequestFrame::decode(&bytes[..cut]).is_err());
        assert_eq!(RequestFrame::decode(&bytes).unwrap(), frame);
    }
}

#[test]
fn request_control_roundtrips() {
    let mut rng = SimRng::seed_from(0xf426);
    for _ in 0..CASES {
        let with_material = rng.gen_bool(0.5);
        let c = RequestControl {
            oid: rng.next_u64(),
            key: random_bytes(&mut rng, 64),
            k_op: with_material.then(|| Key256::from_bytes([1; 32])),
            payload_nonce: with_material.then(|| Nonce8::from_bytes([2; 8])),
        };
        assert_eq!(RequestControl::decode(&c.encode()).unwrap(), c);
    }
}
