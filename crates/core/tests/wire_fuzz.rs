//! Fuzz-style property tests of the wire codecs: arbitrary bytes must never
//! panic the decoders, and valid frames survive mutation detection.

use proptest::prelude::*;

use precursor::wire::{ReplyControl, ReplyFrame, RequestControl, RequestFrame};
use precursor_crypto::keys::{Key256, Nonce12, Nonce8, Tag};

proptest! {
    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = RequestFrame::decode(&bytes);
    }

    #[test]
    fn reply_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = ReplyFrame::decode(&bytes);
    }

    #[test]
    fn control_decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = RequestControl::decode(&bytes);
        let _ = ReplyControl::decode(&bytes);
    }

    #[test]
    fn truncated_valid_frames_are_rejected_not_panicking(
        control in prop::collection::vec(any::<u8>(), 0..100),
        payload in prop::collection::vec(any::<u8>(), 0..200),
        cut in any::<usize>(),
    ) {
        let frame = RequestFrame {
            opcode: precursor::wire::Opcode::Put,
            client_id: 3,
            iv: Nonce12::from_counter(9),
            sealed_control: control,
            mac: Tag::from_bytes([5; 16]),
            payload,
        };
        let bytes = frame.encode();
        let cut = cut % bytes.len();
        if cut < bytes.len() {
            // any strict prefix must fail decoding
            prop_assert!(RequestFrame::decode(&bytes[..cut]).is_err());
        }
        prop_assert_eq!(RequestFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn request_control_roundtrips(
        oid in any::<u64>(),
        key in prop::collection::vec(any::<u8>(), 0..64),
        with_material in any::<bool>(),
    ) {
        let c = RequestControl {
            oid,
            key,
            k_op: with_material.then(|| Key256::from_bytes([1; 32])),
            payload_nonce: with_material.then(|| Nonce8::from_bytes([2; 8])),
        };
        prop_assert_eq!(RequestControl::decode(&c.encode()).unwrap(), c);
    }
}
