//! Zipfian key-popularity generators (YCSB's `ZipfianGenerator` and its
//! scrambled variant), after Gray et al., "Quickly generating
//! billion-record synthetic databases".
//!
//! The Precursor paper evaluates the *uniform* distribution; these are
//! provided so the harness covers the full YCSB configuration space (and
//! the skewed ablation bench uses them).

use precursor_sim::rng::{splitmix64, SimRng};

/// Standard YCSB Zipfian constant.
pub const YCSB_ZIPFIAN_CONSTANT: f64 = 0.99;

/// Draws items in `[0, n)` with Zipfian popularity (item 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Zipfian {
    /// Creates a generator over `n` items with skew `theta` (0 < θ < 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "n must be positive");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = zeta(n, theta);
        let zeta2theta = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// With the standard YCSB constant θ = 0.99.
    pub fn ycsb(n: u64) -> Zipfian {
        Zipfian::new(n, YCSB_ZIPFIAN_CONSTANT)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the next item (0 = most popular).
    pub fn next(&self, rng: &mut SimRng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
    }

    /// The `zeta(2, θ)` constant (exposed for test cross-checks).
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

/// Scrambled Zipfian: Zipfian popularity spread over the key space by a
/// hash, as YCSB does, so the popular keys are not clustered.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled generator over `n` items with the YCSB constant.
    pub fn new(n: u64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::ycsb(n),
        }
    }

    /// Draws the next item id in `[0, n)`.
    pub fn next(&self, rng: &mut SimRng) -> u64 {
        let raw = self.inner.next(rng);
        let mut h = raw.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = splitmix64(&mut h);
        h % self.inner.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeta_matches_harmonic_sum() {
        assert!((zeta(1, 0.99) - 1.0).abs() < 1e-12);
        let z3 = 1.0 + 1.0 / 2f64.powf(0.5) + 1.0 / 3f64.powf(0.5);
        assert!((zeta(3, 0.5) - z3).abs() < 1e-12);
    }

    #[test]
    fn values_stay_in_range() {
        let z = Zipfian::ycsb(1000);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100_000 {
            assert!(z.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn item_zero_is_most_popular() {
        let z = Zipfian::ycsb(1000);
        let mut rng = SimRng::seed_from(2);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "item 0 must be the mode");
        // Zipf(0.99): item 0 should take a noticeable share
        assert!(counts[0] as f64 / 200_000.0 > 0.05);
    }

    #[test]
    fn skew_is_much_heavier_than_uniform() {
        let z = Zipfian::ycsb(10_000);
        let mut rng = SimRng::seed_from(3);
        let mut top100 = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if z.next(&mut rng) < 100 {
                top100 += 1;
            }
        }
        // Under uniform, top-100 of 10k keys would get ≈1 %; Zipf gets far
        // more.
        assert!(
            top100 as f64 / total as f64 > 0.3,
            "top-100 share {}",
            top100 as f64 / total as f64
        );
    }

    #[test]
    fn scrambled_spreads_the_mode() {
        let s = ScrambledZipfian::new(1000);
        let mut rng = SimRng::seed_from(4);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            counts[s.next(&mut rng) as usize] += 1;
        }
        // the hottest item is no longer id 0, but skew persists
        let (mode, &max) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        assert!(max as f64 / 200_000.0 > 0.05);
        // mode being exactly 0 is possible but astronomically unlikely
        assert_ne!(mode, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipfian::ycsb(100);
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        for _ in 0..1000 {
            assert_eq!(z.next(&mut a), z.next(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        let _ = Zipfian::new(10, 1.5);
    }
}
