//! Cluster benchmark driver: closed-loop clients over a multi-node
//! [`PrecursorCluster`], with live key-range migration under load.
//!
//! Unlike [`driver`](crate::driver) — which replays one server's per-op
//! costs through contended NIC/CPU resources — this driver models the
//! cluster-scaling claim directly in virtual time: every node is an
//! independent trusted poller, so the cluster's virtual duration for a
//! measured window is the **busiest node's** accumulated server-side meter
//! charge (critical path + enclave + overhead, folded from each node's
//! [`OpReport`](precursor::OpReport) stream). Client and network time are
//! excluded: they are identical across node counts and would only dilute
//! the scaling signal.
//!
//! Every operation is executed functionally through a [`ClusterClient`]:
//! real routing through a (possibly stale) location cache, real sealed
//! `NotMine` redirects, real migration fences. A redirected op pays its
//! wasted visit at the stale node — the redirect's server-side charge
//! lands in that node's busy time — which is exactly the cost the
//! `redirect rate < 1%` acceptance bound keeps honest.

use precursor::cluster::MigrationOutcome;
use precursor::{ClusterClient, Config, PrecursorCluster};
use precursor_sim::rng::SimRng;
use precursor_sim::{CostModel, Nanos};

use crate::workload::{key_bytes, value_bytes, OpGenerator, OpKind, WorkloadSpec};

/// Parameters of one cluster bench session.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Cluster node count.
    pub nodes: usize,
    /// Connected closed-loop clients (each a [`ClusterClient`]).
    pub clients: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Keyspace loaded during warmup.
    pub key_count: u64,
    /// Seed for all stochastic choices.
    pub seed: u64,
}

/// Results of one measured cluster window.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Operations per second of virtual time (ops over the busiest node's
    /// accumulated server-side charge).
    pub throughput_ops: f64,
    /// Virtual duration of the window (busiest node).
    pub duration: Nanos,
    /// Per-node accumulated server-side charge over the window.
    pub node_busy: Vec<Nanos>,
    /// Operations measured.
    pub ops: u64,
    /// Clients that issued at least one operation.
    pub clients_active: u64,
    /// Sealed `NotMine` redirects observed during the window.
    pub redirects: u64,
    /// Ring snapshots re-fetched after a redirect proved a cache stale.
    pub refreshes: u64,
    /// `redirects / ops` — the stale-routing overhead of the window.
    pub redirect_rate: f64,
    /// Migrations fenced during the window.
    pub migrations_fenced: u64,
    /// Keys installed at destinations by those fences.
    pub keys_moved: u64,
}

/// A warmed-up cluster reusable across measurement windows.
pub struct ClusterSession {
    cluster: PrecursorCluster,
    clients: Vec<ClusterClient>,
    value_size: usize,
    seed: u64,
    measurements: u64,
    node_busy: Vec<Nanos>,
}

impl ClusterSession {
    /// Builds the cluster, connects every client (each eagerly attests to
    /// node 0; other sessions attach lazily on first route), and loads the
    /// keyspace through cluster routing — so each record lives only on its
    /// owning node. Rings are shrunk to 1 KiB (a closed-loop client keeps
    /// one op in flight) and dirty-ring sweeps are on, as in the fig6
    /// scale sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `clients == 0`, or on attestation
    /// failure.
    pub fn build(params: &ClusterParams, cost: &CostModel) -> ClusterSession {
        assert!(params.nodes > 0 && params.clients > 0, "empty cluster");
        let per_entry = (params.value_size + 64).next_power_of_two();
        let config = Config {
            max_clients: params.clients + 1,
            pool_bytes: ((params.key_count as usize + 1024) * per_entry).max(16 << 20),
            ring_bytes: 1 << 10,
            dirty_ring_sweep: true,
            ..Config::default()
        };
        let mut cluster = PrecursorCluster::new(params.nodes, config, cost);
        let mut clients = Vec::with_capacity(params.clients);
        for i in 0..params.clients {
            clients.push(
                ClusterClient::connect(&mut cluster, params.seed ^ ((i as u64) << 8))
                    .expect("connect"),
            );
        }
        let mut session = ClusterSession {
            node_busy: vec![Nanos::ZERO; params.nodes],
            cluster,
            clients,
            value_size: params.value_size,
            seed: params.seed,
            measurements: 0,
        };
        for id in 0..params.key_count {
            let value = value_bytes(id, 0, session.value_size);
            session.clients[0]
                .put_sync(&mut session.cluster, &key_bytes(id), &value)
                .expect("warmup put");
        }
        // Warmup charges don't count against the measured windows.
        session.drain_reports();
        session.node_busy.iter_mut().for_each(|b| *b = Nanos::ZERO);
        session
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &PrecursorCluster {
        &self.cluster
    }

    // Folds every node's pending op reports into its busy-time account.
    fn drain_reports(&mut self) {
        for (i, busy) in self.node_busy.iter_mut().enumerate() {
            for report in self.cluster.node_mut(i).take_reports() {
                *busy += report.meter.total();
            }
        }
    }

    /// Runs one measured window of `ops` operations.
    ///
    /// The window drives `min(clients, ops / 4)` of the connected fleet
    /// round-robin (closed loop: each client has at most one op in
    /// flight). With `migrate` set on a multi-node cluster, the ring
    /// segment owning the first warmup key starts migrating to the next
    /// node five sixths into the window and pumps underneath the workload,
    /// so the tail measures redirect-and-refresh traffic from every stale
    /// location cache.
    ///
    /// # Panics
    ///
    /// Panics if `ops == 0` or an operation fails.
    pub fn measure(&mut self, spec: &WorkloadSpec, ops: u64, migrate: bool) -> ClusterRunResult {
        assert!(ops > 0, "empty measurement");
        self.measurements += 1;
        let active = self.clients.len().min((ops / 4).max(1) as usize);
        let base_seed = self.seed ^ (self.measurements << 32);
        let mut gens: Vec<Option<OpGenerator>> = (0..active).map(|_| None).collect();
        let mut versions: Vec<u64> = vec![0; active];
        let mut activated = 0u64;
        let stats_before: Vec<_> = self.clients.iter().map(|c| c.stats()).collect();
        let busy_before = self.node_busy.clone();
        let fenced_before = self.cluster.migrations_completed();
        let migrate_at = ops * 5 / 6;
        let mut keys_moved = 0u64;

        for i in 0..ops {
            if migrate && self.cluster.node_count() > 1 && i == migrate_at {
                let hot = key_bytes(0);
                let from = self.cluster.meta().lookup(&hot).0;
                let to = (from + 1) % self.cluster.node_count() as u16;
                assert!(
                    self.cluster.start_migration(&hot, to).expect("start"),
                    "distinct nodes always migrate"
                );
            }
            if self.cluster.migration_in_flight() && i % 16 == 0 {
                if let MigrationOutcome::Fenced(r) = self.cluster.pump_migration(8) {
                    keys_moved += r.keys_moved as u64;
                }
            }
            let c = (i % active as u64) as usize;
            let gen = gens[c].get_or_insert_with(|| {
                activated += 1;
                let stream = SimRng::seed_from(
                    base_seed.wrapping_add((c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                OpGenerator::new(spec.clone(), stream)
            });
            let (kind, key_id) = gen.next_op();
            versions[c] += 1;
            let key = key_bytes(key_id);
            let client = &mut self.clients[c];
            match kind {
                OpKind::Read => {
                    client
                        .get_sync(&mut self.cluster, &key)
                        .expect("warmed key reads");
                }
                OpKind::Update => {
                    let value = value_bytes(key_id, versions[c], self.value_size);
                    client
                        .put_sync(&mut self.cluster, &key, &value)
                        .expect("put");
                }
            }
            if i % 64 == 63 {
                self.drain_reports();
            }
        }
        // Settle: drain any still-streaming fence so the session ends in a
        // stable ownership state, then collect the window's charges.
        while self.cluster.migration_in_flight() {
            if let MigrationOutcome::Fenced(r) = self.cluster.pump_migration(8) {
                keys_moved += r.keys_moved as u64;
            }
        }
        self.drain_reports();

        let node_busy: Vec<Nanos> = self
            .node_busy
            .iter()
            .zip(&busy_before)
            .map(|(now, before)| *now - *before)
            .collect();
        let duration = node_busy.iter().copied().max().unwrap_or(Nanos::ZERO);
        let (mut redirects, mut refreshes) = (0u64, 0u64);
        for (client, before) in self.clients.iter().zip(&stats_before) {
            let s = client.stats();
            redirects += s.redirects - before.redirects;
            refreshes += s.refreshes - before.refreshes;
        }
        ClusterRunResult {
            throughput_ops: precursor_sim::stats::throughput_ops_per_sec(ops, duration),
            duration,
            node_busy,
            ops,
            clients_active: activated,
            redirects,
            refreshes,
            redirect_rate: redirects as f64 / ops as f64,
            migrations_fenced: self.cluster.migrations_completed() - fenced_before,
            keys_moved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: usize, clients: usize, ops: u64, migrate: bool) -> ClusterRunResult {
        let cost = CostModel::default();
        let mut session = ClusterSession::build(
            &ClusterParams {
                nodes,
                clients,
                value_size: 32,
                key_count: 400,
                seed: 0xF19,
            },
            &cost,
        );
        session.measure(&WorkloadSpec::workload_b(32, 400), ops, migrate)
    }

    #[test]
    fn single_node_window_produces_sane_numbers() {
        let r = quick(1, 8, 600, false);
        assert!(r.throughput_ops > 10_000.0, "tput {}", r.throughput_ops);
        assert_eq!(r.node_busy.len(), 1);
        assert_eq!(r.redirects, 0, "one node never redirects");
        assert_eq!(r.migrations_fenced, 0);
    }

    #[test]
    fn multi_node_window_fences_and_redirects_cheaply() {
        let r = quick(2, 8, 900, true);
        assert_eq!(r.migrations_fenced, 1, "the window's migration fences");
        assert!(r.redirects > 0, "stale caches must redirect after a fence");
        assert!(r.redirect_rate < 0.05, "rate {}", r.redirect_rate);
        // Both nodes carried load.
        assert!(r.node_busy.iter().all(|b| *b > Nanos::ZERO));
    }

    #[test]
    fn windows_are_deterministic() {
        let a = quick(2, 8, 900, true);
        let b = quick(2, 8, 900, true);
        assert_eq!(a.throughput_ops, b.throughput_ops);
        assert_eq!(a.node_busy, b.node_busy);
        assert_eq!(a.redirects, b.redirects);
    }

    #[test]
    fn nodes_spread_the_busy_time() {
        let one = quick(1, 8, 900, false);
        let four = quick(4, 8, 900, false);
        let speedup = four.throughput_ops / one.throughput_ops;
        assert!(speedup > 1.5, "4-node speedup {speedup:.2}");
    }
}
