//! Workload specifications and operation generation.
//!
//! Mirrors the paper's YCSB setup (§5.2): uniform key popularity over a
//! loaded keyspace, read/update mixes A/B/C plus "update-mostly", fixed
//! value sizes, 16-byte keys.

use precursor_sim::rng::SimRng;

use crate::zipfian::ScrambledZipfian;

/// Key popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// All keys equally likely — the paper's configuration.
    Uniform,
    /// YCSB scrambled Zipfian (θ = 0.99).
    Zipfian,
    /// YCSB "latest": recently inserted keys are the most popular (Zipfian
    /// over recency).
    Latest,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read the key.
    Read,
    /// Update the key with a fresh value.
    Update,
}

/// A workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Fraction of reads in `[0, 1]`; the rest are updates.
    pub read_ratio: f64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Number of keys in the loaded keyspace.
    pub key_count: u64,
    /// Popularity distribution.
    pub distribution: Distribution,
}

impl WorkloadSpec {
    /// YCSB workload A: 50 % read / 50 % update.
    pub fn workload_a(value_size: usize, key_count: u64) -> WorkloadSpec {
        WorkloadSpec {
            read_ratio: 0.5,
            value_size,
            key_count,
            distribution: Distribution::Uniform,
        }
    }

    /// YCSB workload B: 95 % read / 5 % update.
    pub fn workload_b(value_size: usize, key_count: u64) -> WorkloadSpec {
        WorkloadSpec {
            read_ratio: 0.95,
            value_size,
            key_count,
            distribution: Distribution::Uniform,
        }
    }

    /// YCSB workload C: read-only.
    pub fn workload_c(value_size: usize, key_count: u64) -> WorkloadSpec {
        WorkloadSpec {
            read_ratio: 1.0,
            value_size,
            key_count,
            distribution: Distribution::Uniform,
        }
    }

    /// The paper's "update-mostly" mix: 5 % read / 95 % update.
    pub fn update_mostly(value_size: usize, key_count: u64) -> WorkloadSpec {
        WorkloadSpec {
            read_ratio: 0.05,
            value_size,
            key_count,
            distribution: Distribution::Uniform,
        }
    }

    /// A custom read ratio with uniform popularity.
    pub fn with_read_ratio(read_ratio: f64, value_size: usize, key_count: u64) -> WorkloadSpec {
        assert!((0.0..=1.0).contains(&read_ratio), "read ratio in [0,1]");
        WorkloadSpec {
            read_ratio,
            value_size,
            key_count,
            distribution: Distribution::Uniform,
        }
    }
}

/// The fixed key length (YCSB-style 16-byte keys).
pub const KEY_LEN: usize = 16;

/// Deterministic 16-byte key for record `id` ("userXXXXXXXXXXXX").
pub fn key_bytes(id: u64) -> [u8; KEY_LEN] {
    let mut key = *b"user000000000000";
    let digits = format!("{id:012}");
    key[4..].copy_from_slice(&digits.as_bytes()[digits.len() - 12..]);
    key
}

/// Deterministic value bytes for record `id` at a given size and version.
pub fn value_bytes(id: u64, version: u64, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size);
    let seed = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ version;
    for i in 0..size {
        v.push((seed.wrapping_add(i as u64).wrapping_mul(31)) as u8);
    }
    v
}

/// Generates the operation stream for one client.
#[derive(Debug, Clone)]
pub struct OpGenerator {
    spec: WorkloadSpec,
    rng: SimRng,
    zipf: Option<ScrambledZipfian>,
    latest: Option<crate::zipfian::Zipfian>,
}

impl OpGenerator {
    /// Creates a generator with its own deterministic stream.
    pub fn new(spec: WorkloadSpec, rng: SimRng) -> OpGenerator {
        let zipf = match spec.distribution {
            Distribution::Uniform => None,
            Distribution::Zipfian => Some(ScrambledZipfian::new(spec.key_count)),
            Distribution::Latest => None,
        };
        let latest = match spec.distribution {
            Distribution::Latest => Some(crate::zipfian::Zipfian::ycsb(spec.key_count)),
            _ => None,
        };
        OpGenerator {
            spec,
            rng,
            zipf,
            latest,
        }
    }

    /// The workload this generator draws from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draws the next operation: kind + key id.
    pub fn next_op(&mut self) -> (OpKind, u64) {
        let kind = if self.rng.gen_bool(self.spec.read_ratio) {
            OpKind::Read
        } else {
            OpKind::Update
        };
        let key = if let Some(z) = &self.zipf {
            z.next(&mut self.rng)
        } else if let Some(l) = &self.latest {
            // "latest": rank 0 = the newest key id (key_count - 1)
            let rank = l.next(&mut self.rng);
            self.spec.key_count - 1 - rank.min(self.spec.key_count - 1)
        } else {
            self.rng.gen_range(self.spec.key_count)
        };
        (kind, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bytes_are_unique_and_fixed_length() {
        let a = key_bytes(1);
        let b = key_bytes(2);
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.starts_with(b"user"));
        assert_eq!(&key_bytes(599_999)[..], b"user000000599999");
    }

    #[test]
    fn value_bytes_depend_on_version() {
        let v1 = value_bytes(7, 0, 64);
        let v2 = value_bytes(7, 1, 64);
        assert_eq!(v1.len(), 64);
        assert_ne!(v1, v2);
        assert_eq!(v1, value_bytes(7, 0, 64));
    }

    #[test]
    fn read_ratio_is_respected() {
        let spec = WorkloadSpec::workload_b(32, 1000);
        let mut g = OpGenerator::new(spec, SimRng::seed_from(5));
        let n = 100_000;
        let reads = (0..n)
            .filter(|_| matches!(g.next_op().0, OpKind::Read))
            .count();
        let ratio = reads as f64 / n as f64;
        assert!((ratio - 0.95).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let mut g = OpGenerator::new(WorkloadSpec::workload_c(32, 10), SimRng::seed_from(6));
        assert!((0..10_000).all(|_| g.next_op().0 == OpKind::Read));
    }

    #[test]
    fn update_mostly_is_mostly_updates() {
        let mut g = OpGenerator::new(WorkloadSpec::update_mostly(32, 10), SimRng::seed_from(7));
        let updates = (0..10_000)
            .filter(|_| g.next_op().0 == OpKind::Update)
            .count();
        assert!(updates > 9_300);
    }

    #[test]
    fn uniform_keys_cover_the_space() {
        let mut g = OpGenerator::new(WorkloadSpec::workload_c(32, 64), SimRng::seed_from(8));
        let mut seen = [false; 64];
        for _ in 0..10_000 {
            let (_, k) = g.next_op();
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipfian_spec_draws_in_range() {
        let spec = WorkloadSpec {
            distribution: Distribution::Zipfian,
            ..WorkloadSpec::workload_a(32, 500)
        };
        let mut g = OpGenerator::new(spec, SimRng::seed_from(9));
        for _ in 0..10_000 {
            let (_, k) = g.next_op();
            assert!(k < 500);
        }
    }

    #[test]
    fn latest_distribution_prefers_newest_keys() {
        let spec = WorkloadSpec {
            distribution: Distribution::Latest,
            ..WorkloadSpec::workload_a(32, 1000)
        };
        let mut g = OpGenerator::new(spec, SimRng::seed_from(10));
        let mut newest_hits = 0;
        let n = 50_000;
        for _ in 0..n {
            let (_, k) = g.next_op();
            assert!(k < 1000);
            if k >= 990 {
                newest_hits += 1;
            }
        }
        // under uniform the newest 1% would get ~1%; latest gets far more
        assert!(
            newest_hits as f64 / n as f64 > 0.2,
            "newest-10 share {}",
            newest_hits as f64 / n as f64
        );
    }

    #[test]
    #[should_panic(expected = "read ratio")]
    fn rejects_bad_ratio() {
        let _ = WorkloadSpec::with_read_ratio(1.5, 32, 10);
    }
}
