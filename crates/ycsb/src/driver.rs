//! Closed-loop discrete-event benchmark driver.
//!
//! Reproduces the paper's measurement methodology (§5.1–§5.2): N closed-loop
//! clients spread over six client machines (five with 10 Gb NICs, one with a
//! 40 Gb NIC running half the clients), a 12-thread server behind a 40 Gb
//! NIC, a warmup phase that loads the keyspace, then a measured run.
//!
//! Every operation is executed **functionally** — real encryption, real
//! rings, real hash tables, real enclave accounting — and the per-stage
//! costs its meters report are then replayed through contended resources:
//!
//! * the server CPU [`Pool`] (occupancy vs. critical path, DESIGN.md §4),
//! * per-machine client NIC [`Link`]s and the server NIC links,
//! * the RNIC QP cache ([`Transport::Rdma`] backends) or kernel-TCP latency
//!   + scheduling jitter ([`Transport::Tcp`] backends),
//!
//! yielding deterministic virtual-time throughput and latency
//! distributions.
//!
//! The driver holds the system under test as one `Box<dyn TrustedKv>`: the
//! warmup, measurement, and per-op hot loop are written once against the
//! backend-neutral trait, and [`SystemKind`] matters only at construction.
//! Any future [`TrustedKv`] implementor gets the full workload surface for
//! free.
//!
//! A [`BenchSession`] keeps the warmed-up store alive across multiple
//! measurement points (like the paper, which loads 600 k records once and
//! then measures several read ratios), so parameter sweeps don't pay the
//! warmup repeatedly.

use precursor::backend::{KvOp, KvStatus, PrecursorBackend, Transport, TrustedKv};
use precursor::{Config, EncryptionMode};
use precursor_obs::MetricsRegistry;
use precursor_rdma::nic::RnicCache;
use precursor_shieldstore::backend::ShieldBackend;
use precursor_shieldstore::server::ShieldConfig;
use precursor_sim::engine::EventQueue;
use precursor_sim::meter::Stage;
use precursor_sim::rng::SimRng;
use precursor_sim::{CostModel, Histogram, Link, Nanos, Pool};

use crate::workload::{key_bytes, value_bytes, OpGenerator, OpKind, WorkloadSpec, KEY_LEN};

/// Which system a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Precursor with client-side payload encryption (the paper's design).
    Precursor,
    /// Precursor data path with the conventional server-encryption scheme.
    PrecursorServerEnc,
    /// The ShieldStore baseline over kernel TCP.
    ShieldStore,
}

impl SystemKind {
    /// Human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Precursor => "Precursor",
            SystemKind::PrecursorServerEnc => "Precursor server-encryption",
            SystemKind::ShieldStore => "ShieldStore",
        }
    }
}

/// Configuration of one self-contained benchmark run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// System under test.
    pub system: SystemKind,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Closed-loop client count.
    pub clients: usize,
    /// Records loaded during warmup (the paper loads 600 k).
    pub warmup_keys: u64,
    /// Operations measured across all clients.
    pub measure_ops: u64,
    /// Seed for all stochastic choices.
    pub seed: u64,
}

impl RunConfig {
    /// Executes the run with the default (paper-testbed) cost model.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `measure_ops == 0`.
    pub fn run(&self) -> RunResult {
        self.run_with_cost(&CostModel::default())
    }

    /// Like [`run`](Self::run) with an explicit cost model (ablations).
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `measure_ops == 0`.
    pub fn run_with_cost(&self, cost: &CostModel) -> RunResult {
        assert!(self.clients > 0 && self.measure_ops > 0, "empty run");
        let mut session = BenchSession::new(
            self.system,
            self.workload.value_size,
            self.workload.key_count,
            self.warmup_keys,
            self.clients,
            self.seed,
            cost,
        );
        session.measure(&self.workload, self.clients, self.measure_ops)
    }
}

/// Exact per-stage time sums over the recorded ops, folded straight from
/// the functional meters at the driver's per-op tap — the figure-8 source
/// of truth. Unlike the `avg_*` fields of [`RunResult`] (which attribute
/// the *replayed* timeline, so queueing and transport contention land in
/// "networking"), these are the meters' own charges: the per-stage sums
/// add up to [`total`](Self::total) exactly, with no residual.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    sums: [Nanos; 5],
    /// Operations folded into the sums (post-warmup ops only).
    pub ops: u64,
}

impl StageBreakdown {
    // Folds one op's combined meter charges (client pre + post + server).
    fn record(&mut self, stages: &[Nanos; 5]) {
        for (slot, add) in self.sums.iter_mut().zip(stages) {
            *slot += *add;
        }
        self.ops += 1;
    }

    /// Total time charged to `stage` across the recorded ops.
    pub fn get(&self, stage: Stage) -> Nanos {
        let i = Stage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("known stage");
        self.sums[i]
    }

    /// Sum over all stages; equals the sum of the per-op meter totals.
    pub fn total(&self) -> Nanos {
        self.sums.iter().copied().sum()
    }

    /// Mean per-op time charged to `stage`.
    pub fn mean(&self, stage: Stage) -> Nanos {
        if self.ops == 0 {
            Nanos::ZERO
        } else {
            self.get(stage) / self.ops
        }
    }

    /// Mean per-op time summed over all stages.
    pub fn mean_total(&self) -> Nanos {
        if self.ops == 0 {
            Nanos::ZERO
        } else {
            self.total() / self.ops
        }
    }
}

/// Results of one measurement.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Operations per second of virtual time.
    pub throughput_ops: f64,
    /// Per-operation end-to-end latency.
    pub latency: Histogram,
    /// Mean per-op network time (links, propagation, kernel stack) — the
    /// "networking" bar of Figure 8.
    pub avg_network: Nanos,
    /// Mean per-op server processing on the critical path — the "server"
    /// bar of Figure 8.
    pub avg_server: Nanos,
    /// Mean per-op client CPU time.
    pub avg_client: Nanos,
    /// Server CPU pool utilization during the measured window.
    pub server_utilization: f64,
    /// Exact meter-derived per-stage breakdown of the recorded ops.
    pub stages: StageBreakdown,
    /// Enclave report at the end of the run (working set, faults).
    pub epc: precursor_sgx::SgxPerfReport,
    /// Operations measured.
    pub ops: u64,
    /// Virtual duration of the measured window.
    pub duration: Nanos,
    /// Clients that issued at least one operation during the window —
    /// exactly the number of lazily allocated per-client driver states
    /// (a wide mostly-idle fleet stays cheap; see `clients_connected`).
    pub clients_active: u64,
    /// Clients connected to the system under test when the window ran.
    pub clients_connected: u64,
}

// Per-op functional costs extracted from the meters.
struct OpCosts {
    client_pre: Nanos,
    client_post: Nanos,
    req_bytes: usize,
    reply_bytes: usize,
    server_critical: Nanos,
    server_occupancy: Nanos,
    // Trusted polling shard that executed the op (0 outside sharded mode).
    shard: usize,
    // Ring visits the op's poll sweep performed (dirty-sweep cost basis;
    // 0 for backends without a ring scanner).
    rings_swept: u64,
    // Combined (client pre + post + server report) meter charge per stage,
    // in `Stage::ALL` order — feeds the exact `StageBreakdown`.
    stages: [Nanos; 5],
}

// Per-client driver state, boxed and allocated on the client's first
// scheduled op. Everything a closed-loop client needs between ops lives
// here; the RNG stream is owned by the generator and derived from the
// client id, so allocation order never perturbs determinism.
struct ClientState {
    gen: OpGenerator,
    version: u64,
}

/// Everything needed to build a [`BenchSession`], gathered into a builder
/// so the parameter list stays readable as knobs accrue.
#[derive(Debug, Clone)]
pub struct SessionParams {
    system: SystemKind,
    value_size: usize,
    key_count: u64,
    warmup_keys: u64,
    max_clients: usize,
    seed: u64,
    shards: Option<usize>,
    journaled: bool,
    compacted: bool,
    fast: bool,
    ring_bytes: Option<usize>,
    dirty_sweep: bool,
}

impl SessionParams {
    /// Starts a parameter set for `system` with one client, 32-byte values,
    /// an empty warmup, and seed 0.
    pub fn new(system: SystemKind) -> SessionParams {
        SessionParams {
            system,
            value_size: 32,
            key_count: 0,
            warmup_keys: 0,
            max_clients: 1,
            seed: 0,
            shards: None,
            journaled: false,
            compacted: false,
            fast: false,
            ring_bytes: None,
            dirty_sweep: false,
        }
    }

    /// Value size in bytes.
    pub fn value_size(mut self, bytes: usize) -> SessionParams {
        self.value_size = bytes;
        self
    }

    /// Keyspace size and how many records warmup loads.
    pub fn keys(mut self, key_count: u64, warmup_keys: u64) -> SessionParams {
        self.key_count = key_count;
        self.warmup_keys = warmup_keys;
        self
    }

    /// How many clients to connect (measurements may use fewer).
    pub fn max_clients(mut self, n: usize) -> SessionParams {
        self.max_clients = n;
        self
    }

    /// Seed for all stochastic choices.
    pub fn seed(mut self, seed: u64) -> SessionParams {
        self.seed = seed;
        self
    }

    /// Runs the Precursor server with `shards` trusted polling shards and
    /// replays each op's service time on the poller core owning its shard
    /// (one core per shard, §3.8). Precursor family only.
    pub fn shards(mut self, shards: usize) -> SessionParams {
        self.shards = Some(shards);
        self
    }

    /// Attaches the sealed durability journal (group commit of up to 32
    /// records, flushed every poll sweep) before any client connects, so
    /// the measured run pays the full journaling cost: sealing, group
    /// flushes, and reply gating. Precursor family only.
    pub fn journaled(mut self, journaled: bool) -> SessionParams {
        self.journaled = journaled;
        self
    }

    /// Compacts the journal behind the committed watermark every 64 poll
    /// sweeps during the run, so the measured cost includes periodic
    /// snapshot-seal + prefix-truncate cycles and journal growth stays
    /// bounded by the tail since the last cut. Requires
    /// [`journaled`](Self::journaled). Precursor family only.
    pub fn compacted(mut self, compacted: bool) -> SessionParams {
        self.compacted = compacted;
        self
    }

    /// Overrides the per-client request/reply ring size. The default
    /// (1 MiB each way) is sized for bulk loads; a 100k-client scale sweep
    /// would pin ~200 GB of rings, so wide fleets shrink them to a few
    /// frames — a closed-loop client keeps at most one op in flight.
    /// Precursor family only.
    pub fn ring_bytes(mut self, bytes: usize) -> SessionParams {
        self.ring_bytes = Some(bytes);
        self
    }

    /// Drives poll sweeps from the dirty-ring doorbell board
    /// ([`Config::dirty_ring_sweep`]): sweeps visit only rings a delivered
    /// client WRITE marked since the last drain, so an idle ring costs
    /// nothing and the driver charges scan occupancy against the rings
    /// *actually* swept instead of all connected clients. Precursor
    /// family only.
    pub fn dirty_sweep(mut self, dirty: bool) -> SessionParams {
        self.dirty_sweep = dirty;
        self
    }

    /// Turns on every hot-path knob ([`Config::with_fast_path`]): adaptive
    /// per-client poll budgets, batched seal/MAC passes, lazy credit
    /// write-back, and reply-frame arena reuse — the fig4 `+fast`
    /// configuration. Precursor family only.
    pub fn fast(mut self, fast: bool) -> SessionParams {
        self.fast = fast;
        self
    }

    /// Builds the system, connects `max_clients` clients, and loads the
    /// warmup records.
    ///
    /// # Panics
    ///
    /// Panics if `max_clients == 0`, or `shards` was set to zero or
    /// combined with a backend that has no trusted polling shards.
    pub fn build(self, cost: &CostModel) -> BenchSession {
        assert!(self.max_clients > 0, "need at least one client");
        // The keyspace size lives in the WorkloadSpec at measure time; it
        // is carried here only so call sites read as one parameter set.
        let _ = self.key_count;
        if let Some(shards) = self.shards {
            assert!(shards > 0, "need at least one shard");
            assert!(
                self.system != SystemKind::ShieldStore,
                "ShieldStore has no trusted polling shards"
            );
        }
        // The only per-system dispatch in the driver: constructing the
        // backend. Everything after runs through `dyn TrustedKv`.
        let mut sut: Box<dyn TrustedKv> = match self.system {
            SystemKind::Precursor | SystemKind::PrecursorServerEnc => {
                let mode = if self.system == SystemKind::Precursor {
                    EncryptionMode::ClientSide
                } else {
                    EncryptionMode::ServerSide
                };
                let base = if self.fast {
                    Config::fast()
                } else {
                    Config::default()
                };
                let config = Config {
                    mode,
                    max_clients: self.max_clients + 1,
                    pool_bytes: pool_size_for(self.value_size, self.warmup_keys),
                    shards: self.shards.unwrap_or(1),
                    ring_bytes: self.ring_bytes.unwrap_or(base.ring_bytes),
                    dirty_ring_sweep: self.dirty_sweep,
                    ..base
                };
                let mut backend = PrecursorBackend::new(config, cost);
                if self.journaled {
                    backend.enable_durability(precursor::GroupCommitPolicy::batched(32, 0));
                }
                if self.compacted {
                    assert!(self.journaled, "compaction requires the journal");
                    backend.enable_compaction(64);
                }
                Box::new(backend)
            }
            SystemKind::ShieldStore => {
                assert!(!self.journaled, "ShieldStore has no durability journal");
                assert!(!self.fast, "ShieldStore has no Precursor fast path");
                assert!(
                    !self.dirty_sweep && self.ring_bytes.is_none(),
                    "ShieldStore has no client rings"
                );
                Box::new(ShieldBackend::new(ShieldConfig::default(), cost))
            }
        };
        for i in 0..self.max_clients {
            sut.connect(self.seed ^ ((i as u64) << 8)).expect("connect");
        }
        let mut session = BenchSession {
            system: self.system,
            sut,
            cost: cost.clone(),
            value_size: self.value_size,
            seed: self.seed,
            measurements: 0,
            shards: self.shards,
            dirty_sweep: self.dirty_sweep,
        };
        if self.warmup_keys > 0 {
            session.load_more(0, self.warmup_keys);
        }
        session
    }
}

/// A warmed-up system instance reusable across measurement points.
pub struct BenchSession {
    system: SystemKind,
    sut: Box<dyn TrustedKv>,
    cost: CostModel,
    value_size: usize,
    seed: u64,
    measurements: u64,
    // `Some(s)`: the server runs `s` trusted polling shards and the replay
    // pins each op to its shard's dedicated poller core instead of the
    // legacy any-of-12-threads pool (fig6 shard-scaling mode).
    shards: Option<usize>,
    // Dirty-ring sweeps are on: scan occupancy is charged against the
    // rings each op's sweep actually visited (measured through
    // `TrustedKv::rings_swept`) instead of the connected-client count.
    dirty_sweep: bool,
}

impl BenchSession {
    /// Builds the system with `max_clients` connected clients and loads
    /// `warmup_keys` records of `value_size` bytes — shorthand for the
    /// common [`SessionParams`] chain.
    ///
    /// # Panics
    ///
    /// Panics if `max_clients == 0`.
    pub fn new(
        system: SystemKind,
        value_size: usize,
        key_count: u64,
        warmup_keys: u64,
        max_clients: usize,
        seed: u64,
        cost: &CostModel,
    ) -> BenchSession {
        SessionParams::new(system)
            .value_size(value_size)
            .keys(key_count, warmup_keys)
            .max_clients(max_clients)
            .seed(seed)
            .build(cost)
    }

    /// The system this session drives.
    pub fn system(&self) -> SystemKind {
        self.system
    }

    /// Inserts `extra` additional records beyond those already loaded (used
    /// by the EPC-paging experiment, which grows the keyspace to 3 M).
    pub fn load_more(&mut self, start_id: u64, extra: u64) {
        let size = self.value_size;
        let frame = 160 + size + KEY_LEN;
        let batch = self.sut.warmup_batch(frame);
        let mut pending = 0;
        for id in start_id..start_id + extra {
            self.sut
                .submit(0, KvOp::Put, &key_bytes(id), &value_bytes(id, 0, size))
                .expect("warmup put");
            pending += 1;
            if pending == batch {
                // The fairness budget caps records per client per sweep; a
                // bulk load must sweep until the ring drains.
                while self.sut.poll() > 0 {
                    self.sut.poll_replies(0);
                }
                self.sut.poll_replies(0);
                pending = 0;
            }
        }
        while self.sut.poll() > 0 {
            self.sut.poll_replies(0);
        }
        self.sut.poll_replies(0);
        self.sut.take_completed(0);
        self.sut.take_client_meter(0);
        self.sut.take_reports();
    }

    /// The enclave report of the underlying server.
    pub fn sgx_report(&self) -> precursor_sgx::SgxPerfReport {
        self.sut.sgx_report()
    }

    /// A snapshot of the backend's metrics registry (op counts, status
    /// counts, per-stage latency histograms — see [`TrustedKv::metrics`]).
    /// Warmup traffic is included: the registry is cumulative over the
    /// session's lifetime.
    pub fn metrics(&self) -> MetricsRegistry {
        self.sut.metrics()
    }

    /// Runs one measured window of `measure_ops` operations with `clients`
    /// closed-loop clients (must not exceed the session's `max_clients`).
    ///
    /// # Panics
    ///
    /// Panics if `clients` exceeds the connected clients or is zero.
    pub fn measure(
        &mut self,
        workload: &WorkloadSpec,
        clients: usize,
        measure_ops: u64,
    ) -> RunResult {
        assert!(
            clients > 0 && clients <= self.sut.clients(),
            "bad client count"
        );
        assert!(measure_ops > 0, "empty measurement");
        self.measurements += 1;
        let cost = self.cost.clone();
        let mut rng = SimRng::seed_from(self.seed ^ (self.measurements << 32));

        // --- resources ---
        // Sharded mode dedicates one core per trusted polling shard; the
        // legacy model uses the paper testbed's 12-thread worker pool.
        let mut server_cpu = match self.shards {
            Some(s) => Pool::new("trusted-pollers", s),
            None => Pool::new("server-threads", cost.server_threads),
        };
        let mut server_rx = Link::new("server-nic-rx", cost.rdma_one_way, cost.server_nic_gbps);
        let mut server_tx = Link::new("server-nic-tx", cost.rdma_one_way, cost.server_nic_gbps);
        // Six client machines; the sixth has a 40 Gb NIC and runs half the
        // clients (§5.1).
        let mut machine_tx: Vec<Link> = (0..6)
            .map(|m| {
                let bw = if m == 5 { 40.0 } else { cost.client_nic_gbps };
                Link::new("client-machine-tx", Nanos::ZERO, bw)
            })
            .collect();
        let mut machine_rx: Vec<Link> = (0..6)
            .map(|m| {
                let bw = if m == 5 { 40.0 } else { cost.client_nic_gbps };
                Link::new("client-machine-rx", Nanos::ZERO, bw)
            })
            .collect();
        let machine_of = |c: usize| -> usize {
            if c % 2 == 1 {
                5
            } else {
                (c / 2) % 5
            }
        };
        let mut rnic = RnicCache::new(cost.rnic_cache_qps);
        let is_tcp = self.sut.transport() == Transport::Tcp;
        // Enclave polling sweeps every connected ring: occupancy per op
        // scales with the client count relative to the calibration baseline
        // (§5.2: "the necessary polling in the enclave ... might incur much
        // CPU overhead"). ShieldStore's socket loop is epoll-driven and not
        // affected. With dirty-ring sweeps on, the static estimate is
        // replaced per op by the rings the sweep *actually* visited.
        // Saturating i64 arithmetic throughout: a million-client fleet must
        // degrade into clamped costs, never wrap.
        let per_ring_cycles = i64::try_from(cost.poll_scan_per_client).unwrap_or(i64::MAX);
        let baseline_rings = i64::try_from(cost.poll_scan_baseline).unwrap_or(i64::MAX);
        let measured_scan = self.dirty_sweep && !is_tcp;
        let scan_adjust_cycles: i64 = if is_tcp {
            0
        } else {
            let extra_rings = i64::try_from(clients)
                .unwrap_or(i64::MAX)
                .saturating_sub(baseline_rings);
            per_ring_cycles.saturating_mul(extra_rings)
        };
        // Sharded mode: each poller core sweeps only the rings it owns —
        // ceil(clients / shards) of them — so per-op scan occupancy shrinks
        // with the shard count (the fig6 scaling effect). Charged in full
        // (no calibration-baseline subtraction: the dedicated poller has no
        // other work to hide the sweep behind).
        let shard_scan: Option<Nanos> = self.shards.map(|s| {
            let owned_rings = clients.div_ceil(s) as u64;
            cost.server_time(precursor_sim::time::Cycles(
                cost.poll_scan_per_client.saturating_mul(owned_rings),
            ))
        });

        // Per-client driver state is allocated on a client's first
        // scheduled op, so a measurement that touches only part of a wide
        // fleet costs memory proportional to the *active* clients. Each
        // client's RNG stream is derived from (seed, measurement, id) —
        // not forked sequentially from the driver RNG — so streams do not
        // depend on activation order.
        let base_seed = self.seed ^ (self.measurements << 32);
        let mut states: Vec<Option<Box<ClientState>>> = (0..clients).map(|_| None).collect();
        let mut activated = 0u64;

        let mut queue: EventQueue<usize> = EventQueue::new();
        for c in 0..clients {
            queue.push(Nanos(c as u64 * 120), c);
        }

        // Latency is aggregated per client-machine cohort (six machines,
        // §5.1) and merged at the end — per-client histograms would make a
        // 100k-client sweep's memory O(connected).
        let mut cohort_lat: [Option<Box<Histogram>>; 6] = Default::default();
        let mut stages = StageBreakdown::default();
        let mut net_sum = Nanos::ZERO;
        let mut server_sum = Nanos::ZERO;
        let mut client_sum = Nanos::ZERO;
        let mut completed = 0u64;
        let mut last_completion = Nanos::ZERO;
        let skip = measure_ops / 10; // warm the queues before recording

        while completed < measure_ops {
            let (t0, c) = queue.pop().expect("closed loop never drains");
            let state = states[c].get_or_insert_with(|| {
                activated += 1;
                let stream = SimRng::seed_from(
                    base_seed.wrapping_add((c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                Box::new(ClientState {
                    gen: OpGenerator::new(workload.clone(), stream),
                    version: 1,
                })
            });
            let (kind, key_id) = state.gen.next_op();
            state.version += 1;
            let version = state.version;
            let costs = self.execute_op(workload, c, kind, key_id, version);

            // --- compose the timeline through the contended resources ---
            let m = machine_of(c);
            let t_sent = t0 + costs.client_pre;
            // request: client machine NIC → server NIC
            let t_at_server_nic = machine_tx[m].transfer(t_sent, costs.req_bytes);
            let mut t_arrive = server_rx.transfer(t_at_server_nic, costs.req_bytes);
            if is_tcp {
                // kernel + interrupt latency with scheduling jitter (§5.3)
                let jitter = rng.lognormal(0.0, cost.tcp_jitter_sigma);
                t_arrive += Nanos((cost.tcp_msg_latency.0 as f64 * jitter) as u64);
            } else if !rnic.access(c as u64) {
                t_arrive += cost.rnic_cache_miss;
            }
            // poller pickup delay (OS/poll-loop noise)
            t_arrive += Nanos((250.0 * rng.lognormal(0.0, 0.8)) as u64);

            let (t_depart, _busy_until) = match (self.shards, shard_scan) {
                (Some(s), Some(scan)) => {
                    let scan = if measured_scan {
                        // Measured basis: the sweep's ring visits, spread
                        // over the `s` parallel poller cores.
                        cost.server_time(precursor_sim::time::Cycles(
                            cost.poll_scan_per_client
                                .saturating_mul(costs.rings_swept.div_ceil(s as u64)),
                        ))
                    } else {
                        scan
                    };
                    let occupancy = costs.server_occupancy + scan;
                    // The op is served by the poller core owning its shard
                    // — a hot shard queues on its own core while the others
                    // idle, which is exactly the skew fig6 measures.
                    server_cpu.acquire_partial_on(
                        costs.shard % s,
                        t_arrive,
                        costs.server_critical,
                        occupancy,
                    )
                }
                _ => {
                    let adjust_cycles = if measured_scan {
                        // Measured basis: rings this op's sweep actually
                        // visited, relative to the calibration baseline.
                        let extra = i64::try_from(costs.rings_swept)
                            .unwrap_or(i64::MAX)
                            .saturating_sub(baseline_rings);
                        per_ring_cycles.saturating_mul(extra)
                    } else {
                        scan_adjust_cycles
                    };
                    let adjust = Nanos(
                        cost.server_time(precursor_sim::time::Cycles(adjust_cycles.unsigned_abs()))
                            .0,
                    );
                    let occupancy = if adjust_cycles >= 0 {
                        costs.server_occupancy + adjust
                    } else {
                        costs
                            .server_occupancy
                            .saturating_sub(adjust)
                            .max(costs.server_critical)
                    };
                    server_cpu.acquire_partial(t_arrive, costs.server_critical, occupancy)
                }
            };

            // reply: server NIC → client machine NIC
            let t_reply_at_machine = server_tx.transfer(t_depart, costs.reply_bytes);
            let mut t_back = machine_rx[m].transfer(t_reply_at_machine, costs.reply_bytes);
            if is_tcp {
                let jitter = rng.lognormal(0.0, cost.tcp_jitter_sigma);
                t_back += Nanos((cost.tcp_msg_latency.0 as f64 * jitter) as u64);
            } else if !rnic.access(c as u64) {
                t_back += cost.rnic_cache_miss;
            }
            let t_done = t_back + costs.client_post;

            let op_latency = t_done - t0;
            completed += 1;
            if completed > skip {
                cohort_lat[m]
                    .get_or_insert_with(|| Box::new(Histogram::new()))
                    .record(op_latency);
                // Figure-8 style attribution: "server" is the request's
                // processing time proper (what the paper instruments);
                // queueing and transport fall under "networking".
                let server_part = costs.server_critical.min(op_latency);
                let net = op_latency
                    .saturating_sub(costs.client_pre + costs.client_post)
                    .saturating_sub(server_part);
                net_sum += net;
                server_sum += server_part;
                client_sum += costs.client_pre + costs.client_post;
                stages.record(&costs.stages);
            }
            last_completion = last_completion.max(t_done);
            // Closed loop with per-client think/issue time (Fig. 6 rise).
            queue.push(t_done + cost.client_think, c);
        }

        let measured = measure_ops - skip;
        let duration = last_completion;
        // Fold the cohort histograms into the session-wide distribution.
        let mut latency = Histogram::new();
        for cohort in cohort_lat.into_iter().flatten() {
            latency.merge(&cohort);
        }
        RunResult {
            throughput_ops: precursor_sim::stats::throughput_ops_per_sec(measure_ops, duration),
            latency,
            avg_network: net_sum / measured,
            avg_server: server_sum / measured,
            avg_client: client_sum / measured,
            server_utilization: server_cpu.utilization(duration),
            stages,
            epc: self.sut.sgx_report(),
            ops: measure_ops,
            duration,
            clients_active: activated,
            clients_connected: self.sut.clients() as u64,
        }
    }

    // The hot loop: one functional op through the backend-neutral trait —
    // no per-system dispatch.
    fn execute_op(
        &mut self,
        workload: &WorkloadSpec,
        c: usize,
        kind: OpKind,
        key_id: u64,
        version: u64,
    ) -> OpCosts {
        let key = key_bytes(key_id);
        let size = workload.value_size;
        let sut = self.sut.as_mut();
        sut.take_client_meter(c);
        match kind {
            OpKind::Read => sut.submit(c, KvOp::Get, &key, &[]),
            OpKind::Update => sut.submit(c, KvOp::Put, &key, &value_bytes(key_id, version, size)),
        }
        .expect("op send");
        let pre = sut.take_client_meter(c);
        let rings_before = sut.rings_swept();
        sut.poll();
        let rings_swept = sut.rings_swept().saturating_sub(rings_before);
        let report = sut.take_reports().pop().expect("one op processed");
        debug_assert_ne!(report.status, KvStatus::Replay);
        sut.poll_replies(c);
        sut.take_completed(c);
        let post = sut.take_client_meter(c);

        let server_critical =
            report.meter.get(Stage::ServerCritical) + report.meter.get(Stage::Enclave);
        let mut stages = [Nanos::ZERO; 5];
        for (slot, stage) in stages.iter_mut().zip(Stage::ALL) {
            *slot = pre.get(stage) + post.get(stage) + report.meter.get(stage);
        }
        OpCosts {
            client_pre: pre.get(Stage::ClientCpu),
            client_post: post.get(Stage::ClientCpu),
            req_bytes: pre.counters().tx_bytes as usize,
            reply_bytes: report.meter.counters().tx_bytes as usize,
            server_critical,
            server_occupancy: server_critical + report.meter.get(Stage::ServerOverhead),
            shard: report.shard as usize,
            rings_swept,
            stages,
        }
    }
}

fn pool_size_for(value_size: usize, warmup_keys: u64) -> usize {
    let per_entry = (value_size + 64).next_power_of_two();
    ((warmup_keys as usize + 1024) * per_entry).max(16 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(system: SystemKind, read_ratio: f64) -> RunResult {
        RunConfig {
            system,
            workload: WorkloadSpec::with_read_ratio(read_ratio, 32, 500),
            clients: 4,
            warmup_keys: 500,
            measure_ops: 1_500,
            seed: 42,
        }
        .run()
    }

    #[test]
    fn precursor_run_produces_sane_numbers() {
        let r = quick(SystemKind::Precursor, 1.0);
        assert!(r.throughput_ops > 10_000.0, "tput {}", r.throughput_ops);
        assert!(r.latency.count() > 0);
        assert!(r.latency.percentile(50.0) > Nanos(1_000));
        assert!(r.avg_server > Nanos::ZERO);
        assert!(r.avg_network > Nanos::ZERO);
    }

    #[test]
    fn shieldstore_is_slower_than_precursor() {
        let p = quick(SystemKind::Precursor, 1.0);
        let s = quick(SystemKind::ShieldStore, 1.0);
        assert!(
            p.throughput_ops > 2.0 * s.throughput_ops,
            "precursor {} vs shieldstore {}",
            p.throughput_ops,
            s.throughput_ops
        );
        assert!(s.latency.percentile(50.0) > p.latency.percentile(50.0));
    }

    #[test]
    fn server_encryption_is_slower_than_client_encryption() {
        let client_enc = quick(SystemKind::Precursor, 0.5);
        let server_enc = quick(SystemKind::PrecursorServerEnc, 0.5);
        assert!(
            client_enc.throughput_ops > server_enc.throughput_ops,
            "client {} vs server {}",
            client_enc.throughput_ops,
            server_enc.throughput_ops
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SystemKind::Precursor, 0.95);
        let b = quick(SystemKind::Precursor, 0.95);
        assert_eq!(a.throughput_ops, b.throughput_ops);
        assert_eq!(a.latency.percentile(99.0), b.latency.percentile(99.0));
    }

    #[test]
    fn different_seeds_change_details_not_magnitudes() {
        let base = RunConfig {
            system: SystemKind::Precursor,
            workload: WorkloadSpec::workload_c(32, 500),
            clients: 4,
            warmup_keys: 500,
            measure_ops: 1_500,
            seed: 1,
        };
        let a = base.run();
        let b = RunConfig { seed: 2, ..base }.run();
        let ratio = a.throughput_ops / b.throughput_ops;
        assert!(ratio > 0.8 && ratio < 1.25, "ratio {ratio}");
    }

    #[test]
    fn update_heavy_is_slower_than_read_only() {
        let ro = quick(SystemKind::Precursor, 1.0);
        let um = quick(SystemKind::Precursor, 0.05);
        assert!(ro.throughput_ops > um.throughput_ops);
    }

    #[test]
    fn session_reuse_matches_methodology() {
        // One warmup, several measurement points — like the paper's runs.
        let cost = CostModel::default();
        let mut session = BenchSession::new(SystemKind::Precursor, 32, 500, 500, 4, 7, &cost);
        let c = session.measure(&WorkloadSpec::workload_c(32, 500), 4, 1_000);
        let a = session.measure(&WorkloadSpec::workload_a(32, 500), 4, 1_000);
        assert!(c.throughput_ops > a.throughput_ops);
        // store grew only by the updates, not re-warmed
        assert!(session.sgx_report().working_set_pages < 200);
    }

    #[test]
    fn shard_scaling_lifts_saturated_throughput() {
        // 16 closed-loop clients saturate one poller core; four shards
        // spread the same offered load over four cores (fig6).
        let cost = CostModel::default();
        let spec = WorkloadSpec::workload_c(32, 2_000);
        let params = SessionParams::new(SystemKind::Precursor)
            .value_size(32)
            .keys(2_000, 2_000)
            .max_clients(16)
            .seed(11);
        let mut one = params.clone().shards(1).build(&cost);
        let mut four = params.shards(4).build(&cost);
        let r1 = one.measure(&spec, 16, 4_000);
        let r4 = four.measure(&spec, 16, 4_000);
        assert!(
            r4.throughput_ops > 1.5 * r1.throughput_ops,
            "1 shard {} vs 4 shards {}",
            r1.throughput_ops,
            r4.throughput_ops
        );
    }

    #[test]
    fn stage_breakdown_is_conserved_and_populated() {
        let r = quick(SystemKind::Precursor, 0.5);
        assert_eq!(r.stages.ops, r.latency.count());
        // Exact conservation: per-stage sums add up to the total with no
        // residual, because `Meter::total()` is the sum of its stages.
        let sum: Nanos = Stage::ALL.iter().map(|&s| r.stages.get(s)).sum();
        assert_eq!(sum, r.stages.total());
        assert!(r.stages.get(Stage::ClientCpu) > Nanos::ZERO);
        assert!(r.stages.get(Stage::ServerCritical) > Nanos::ZERO);
        assert!(r.stages.get(Stage::Enclave) > Nanos::ZERO);
        assert!(r.stages.mean_total() > Nanos::ZERO);
        // Transport legs are replayed on the contended links, not charged
        // to the functional meters: the Network stage stays zero here.
        assert_eq!(r.stages.get(Stage::Network), Nanos::ZERO);
    }

    #[test]
    fn fast_path_lowers_server_overhead_and_conserves_stages() {
        let cost = CostModel::default();
        let spec = WorkloadSpec::workload_c(32, 500);
        let params = SessionParams::new(SystemKind::Precursor)
            .value_size(32)
            .keys(500, 500)
            .max_clients(4)
            .seed(9);
        let mut plain = params.clone().build(&cost);
        let mut fast = params.fast(true).build(&cost);
        let rp = plain.measure(&spec, 4, 1_000);
        let rf = fast.measure(&spec, 4, 1_000);
        let over_plain = rp.stages.mean(Stage::ServerOverhead);
        let over_fast = rf.stages.mean(Stage::ServerOverhead);
        assert!(
            over_fast < over_plain / 3,
            "plain {over_plain:?} fast {over_fast:?}"
        );
        // ≤ 3 µs/op server overhead — the fig4 `+fast` target.
        assert!(over_fast <= Nanos(3_000), "fast overhead {over_fast:?}");
        // Exact conservation survives batched sealing: the per-stage sums
        // still add up to the total with no residual.
        let sum: Nanos = Stage::ALL.iter().map(|&s| rf.stages.get(s)).sum();
        assert_eq!(sum, rf.stages.total());
        assert!(rf.throughput_ops > 0.0);
    }

    #[test]
    fn session_metrics_expose_op_counts() {
        let cost = CostModel::default();
        let mut session = BenchSession::new(SystemKind::Precursor, 32, 500, 500, 2, 7, &cost);
        let spec = WorkloadSpec::workload_c(32, 500);
        let r = session.measure(&spec, 2, 400);
        let m = session.metrics();
        let gets = m.counter("ops.get");
        let puts = m.counter("ops.put");
        // Warmup puts plus the measured gets are all accounted for.
        assert!(puts >= 500, "puts {puts}");
        assert!(gets >= r.ops, "gets {gets} ops {}", r.ops);
    }

    #[test]
    fn lazy_state_allocates_only_active_clients() {
        // 64 connected clients, but the window ends after 16 ops: the
        // first 16 pops are 16 distinct clients (initial schedule spacing
        // is far below latency + think time), so exactly 16 driver states
        // are ever allocated.
        let cost = CostModel::default();
        let mut session = BenchSession::new(SystemKind::Precursor, 32, 500, 500, 64, 5, &cost);
        let r = session.measure(&WorkloadSpec::workload_c(32, 500), 64, 16);
        assert_eq!(r.clients_connected, 64);
        assert_eq!(r.clients_active, 16, "active {}", r.clients_active);
    }

    #[test]
    fn lazy_streams_do_not_depend_on_fleet_size() {
        // The per-client RNG streams are derived from (seed, measurement,
        // client id), so the same clients issue the same ops regardless of
        // how many other clients exist in the fleet. Magnitudes must agree
        // closely; exact timings differ through resource contention.
        let cost = CostModel::default();
        let spec = WorkloadSpec::workload_c(32, 500);
        let mut small = BenchSession::new(SystemKind::Precursor, 32, 500, 500, 4, 5, &cost);
        let mut big = BenchSession::new(SystemKind::Precursor, 32, 500, 500, 32, 5, &cost);
        let rs = small.measure(&spec, 4, 800);
        let rb = big.measure(&spec, 4, 800);
        let ratio = rs.throughput_ops / rb.throughput_ops;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn dirty_sweep_is_deterministic_and_equivalent() {
        let cost = CostModel::default();
        let spec = WorkloadSpec::workload_c(32, 500);
        let params = SessionParams::new(SystemKind::Precursor)
            .value_size(32)
            .keys(500, 500)
            .max_clients(4)
            .seed(13);
        let run = |p: SessionParams| p.build(&cost).measure(&spec, 4, 1_000);
        let plain = run(params.clone());
        let dirty_a = run(params.clone().dirty_sweep(true));
        let dirty_b = run(params.dirty_sweep(true));
        // Deterministic replay under the doorbell-driven sweep.
        assert_eq!(dirty_a.throughput_ops, dirty_b.throughput_ops);
        assert_eq!(
            dirty_a.latency.percentile(99.0),
            dirty_b.latency.percentile(99.0)
        );
        // Same functional work, only the scan-cost basis differs: the two
        // modes must stay in the same performance regime.
        let ratio = dirty_a.throughput_ops / plain.throughput_ops;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn small_rings_sustain_the_closed_loop() {
        // The 100k-client sweeps shrink rings to ~1 KiB (a closed-loop
        // client keeps one op in flight); the protocol must still run.
        let cost = CostModel::default();
        let spec = WorkloadSpec::workload_c(32, 200);
        let mut session = SessionParams::new(SystemKind::Precursor)
            .value_size(32)
            .keys(200, 200)
            .max_clients(4)
            .ring_bytes(1 << 10)
            .dirty_sweep(true)
            .seed(3)
            .build(&cost);
        let r = session.measure(&spec, 4, 600);
        assert!(r.throughput_ops > 0.0);
        assert!(r.latency.count() > 0);
    }

    #[test]
    fn load_more_extends_keyspace() {
        let cost = CostModel::default();
        let mut session = BenchSession::new(SystemKind::Precursor, 32, 500, 500, 2, 7, &cost);
        let before = session.sgx_report().working_set_pages;
        session.load_more(500, 5_000);
        assert!(session.sgx_report().working_set_pages > before);
        // reads over the extended space succeed
        let spec = WorkloadSpec::workload_c(32, 5_500);
        let r = session.measure(&spec, 2, 500);
        assert!(r.throughput_ops > 0.0);
    }
}
