//! YCSB-style workload generation and the closed-loop benchmark driver.
//!
//! The paper evaluates with YCSB (§5.1): uniform key popularity, workloads
//! A (50 % read), B (95 % read), C (read-only) plus an update-mostly mix
//! (5 % read), 600 k warmup records, 50 closed-loop clients over six client
//! machines, 12 server threads.
//!
//! * [`workload`] — workload specifications and the operation generator.
//! * [`zipfian`] — the YCSB Zipfian/scrambled-Zipfian generators (provided
//!   for completeness; the paper "concentrates on the uniform YCSB
//!   workload").
//! * [`driver`] — the closed-loop discrete-event driver: executes every
//!   operation *functionally* against the chosen system (real crypto, real
//!   rings, real enclave accounting), then replays the measured per-stage
//!   costs through contended resources (server CPU pool, NIC links, RNIC
//!   cache, TCP jitter) to produce throughput and latency distributions.
//!
//! # Example
//!
//! ```
//! use precursor_ycsb::driver::{RunConfig, SystemKind};
//! use precursor_ycsb::workload::WorkloadSpec;
//!
//! let config = RunConfig {
//!     system: SystemKind::Precursor,
//!     workload: WorkloadSpec::workload_c(32, 1_000),
//!     clients: 4,
//!     warmup_keys: 1_000,
//!     measure_ops: 2_000,
//!     seed: 1,
//! };
//! let result = config.run();
//! assert!(result.throughput_ops > 0.0);
//! assert!(result.latency.count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod driver;
pub mod workload;
pub mod zipfian;

pub use driver::{RunConfig, RunResult, SystemKind};
pub use workload::{OpKind, WorkloadSpec};
