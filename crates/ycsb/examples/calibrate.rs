//! Quick calibration check: one Figure-4-like point per system.
use precursor_ycsb::driver::{RunConfig, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;
use std::time::Instant;

fn main() {
    let keys: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let ops: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    for system in [
        SystemKind::Precursor,
        SystemKind::PrecursorServerEnc,
        SystemKind::ShieldStore,
    ] {
        for ratio in [1.0, 0.05] {
            let t = Instant::now();
            let r = RunConfig {
                system,
                workload: WorkloadSpec::with_read_ratio(ratio, 32, keys),
                clients: 50,
                warmup_keys: keys,
                measure_ops: ops,
                seed: 7,
            }
            .run();
            println!(
                "{:<28} read={:>4}  tput={:>9.0} ops/s  p50={} p99={} util={:.2}  wall={:.1}s",
                system.name(),
                ratio,
                r.throughput_ops,
                r.latency.percentile(50.0),
                r.latency.percentile(99.0),
                r.server_utilization,
                t.elapsed().as_secs_f64()
            );
        }
    }
}
