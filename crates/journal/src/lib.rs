//! Sealed, MAC-chained mutation journal with group commit.
//!
//! PR 1's crash-restart snapshots protect a single node but lose everything
//! committed since the last seal. This crate promotes them into a
//! *continuous journal*: every store mutation appends one sealed record,
//! records accumulate in a pending group-commit buffer, and a *flush* moves
//! the group to durable storage in one write. The framing is designed for
//! the failure model of an untrusted host that can kill the process
//! mid-write and tamper with anything outside the enclave:
//!
//! * Each record body is AES-GCM sealed under an epoch-specific journal key
//!   (derived from the enclave sealing key, see `precursor-sgx`), with the
//!   running chain state and the record position bound into the AAD — a
//!   record cannot be decrypted out of order, spliced from another epoch,
//!   or re-used at a different sequence number.
//! * Records are MAC-chained ([`sha256`] over `state ‖ header ‖ ciphertext`)
//!   so [`recover`] can establish the longest authentic prefix without a
//!   trailing commit marker: a torn tail (partial final write) or any
//!   bit-flip simply terminates the chain and is truncated, never replayed.
//! * Sequence numbers are dense from 1, so replication acknowledgements and
//!   group-commit release points can be expressed as byte offsets *or*
//!   record sequence numbers interchangeably.
//!
//! The journal itself is transport- and policy-agnostic: the server decides
//! *what* to append (see `precursor::server`), the [`GroupCommitPolicy`]
//! decides *when* to flush, and the replication layer decides when a
//! flushed byte range is *committed* (quorum-acknowledged).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use precursor_crypto::keys::{Key128, Nonce12};
use precursor_crypto::{gcm, sha256};

/// Record header: `seq u64 ‖ kind u8 ‖ ct_len u32`, little-endian.
const HEADER_LEN: usize = 8 + 1 + 4;
/// Trailing chain tag bytes per record.
const CHAIN_TAG_LEN: usize = 16;

/// When the pending group-commit buffer is flushed to durable storage.
///
/// Both thresholds are checked against virtual time ("now" is whatever
/// monotonic tick the caller supplies — the server uses its sweep counter):
/// a flush happens when the group reaches `max_records` *or* the oldest
/// pending record has waited `max_age` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitPolicy {
    /// Flush when this many records are pending.
    pub max_records: usize,
    /// Flush when the oldest pending record is this many ticks old.
    pub max_age: u64,
}

impl GroupCommitPolicy {
    /// Flush after every append — the degenerate group of one. Keeps the
    /// durable journal exactly in step with execution, which is what the
    /// deterministic golden-digest runs use.
    pub fn immediate() -> GroupCommitPolicy {
        GroupCommitPolicy {
            max_records: 1,
            max_age: 0,
        }
    }

    /// Group up to `max_records` appends, but never hold a record pending
    /// for more than `max_age` ticks.
    pub fn batched(max_records: usize, max_age: u64) -> GroupCommitPolicy {
        GroupCommitPolicy {
            max_records: max_records.max(1),
            max_age,
        }
    }
}

/// Counters the observability layer mirrors into the metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Completed group-commit flushes.
    pub flushes: u64,
    /// Total sealed bytes moved to durable storage.
    pub bytes_sealed: u64,
    /// Records appended (pending + durable).
    pub records: u64,
    /// Prefix truncations performed ([`Journal::truncate_prefix`]).
    pub compactions: u64,
    /// Records removed by prefix truncation across all compactions.
    pub truncated_records: u64,
}

/// Damage applied to a flush by the fault-injection layer — models the
/// untrusted host killing the process mid-write or corrupting the write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushDamage {
    /// The write completed intact.
    None,
    /// The process died mid-write: only the first `n` bytes of the group
    /// reached durable storage. The journal is wedged afterwards.
    Torn(usize),
    /// The write completed but bit `i` (mod group length) flipped. The
    /// journal is wedged afterwards.
    CorruptBit(usize),
}

/// One decoded journal record, as recovered from durable bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Dense sequence number, starting at 1.
    pub seq: u64,
    /// Application-defined record kind tag.
    pub kind: u8,
    /// Decrypted record body.
    pub body: Vec<u8>,
}

/// Result of [`recover`]: the longest authentic record prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// Authenticated records in sequence order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the authentic prefix — everything past this offset is
    /// a torn tail or tampering and must be truncated, never replayed.
    pub valid_len: usize,
    /// Whether trailing bytes were discarded.
    pub truncated: bool,
}

/// A continuous sealed journal of store mutations.
///
/// `durable` models the bytes that survived past crashes (the "file");
/// `pending` is the in-memory group-commit buffer that a crash loses.
#[derive(Debug, Clone)]
pub struct Journal {
    key: Key128,
    epoch: u64,
    chain: [u8; 16],
    next_seq: u64,
    durable: Vec<u8>,
    pending: Vec<u8>,
    pending_records: usize,
    pending_since: u64,
    policy: GroupCommitPolicy,
    stats: JournalStats,
    wedged: bool,
    // Compaction cut: `durable[0]` is the first byte of record
    // `base_seq + 1`; everything at or before `base_seq` was truncated
    // behind a sealed snapshot. `base_chain` is the MAC-chain state at the
    // cut (the trailing chain tag of record `base_seq`), the anchor
    // [`recover_from`] resumes the walk at. `trimmed_bytes` keeps byte
    // offsets logical: replication acknowledgements and flush marks refer
    // to the epoch's whole stream, not the surviving suffix.
    base_seq: u64,
    base_chain: [u8; 16],
    trimmed_bytes: u64,
}

/// Chain seed for an epoch: journals from different epochs can never be
/// spliced into each other even under the same key-derivation root.
/// Public so snapshot anchors for journal-less servers can use the same
/// well-known value instead of an ad-hoc zero sentinel.
pub fn genesis_chain(epoch: u64) -> [u8; 16] {
    let mut msg = Vec::with_capacity(32);
    msg.extend_from_slice(b"precursor-journal-genesis");
    msg.extend_from_slice(&epoch.to_le_bytes());
    let d = sha256::digest(&msg);
    let mut c = [0u8; 16];
    c.copy_from_slice(&d[..16]);
    c
}

// AAD binds the record to its chain position, kind and sequence number.
fn record_aad(chain: &[u8; 16], kind: u8, seq: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(16 + 1 + 8);
    aad.extend_from_slice(chain);
    aad.push(kind);
    aad.extend_from_slice(&seq.to_le_bytes());
    aad
}

// Chain advance: `state' = sha256(state ‖ seq ‖ kind ‖ ct)[..16]`.
fn advance_chain(chain: &[u8; 16], seq: u64, kind: u8, ct: &[u8]) -> [u8; 16] {
    let mut msg = Vec::with_capacity(16 + 8 + 1 + ct.len());
    msg.extend_from_slice(chain);
    msg.extend_from_slice(&seq.to_le_bytes());
    msg.push(kind);
    msg.extend_from_slice(ct);
    let d = sha256::digest(&msg);
    let mut c = [0u8; 16];
    c.copy_from_slice(&d[..16]);
    c
}

impl Journal {
    /// Opens a fresh journal for `epoch` under `key`. The epoch is the
    /// trusted monotonic counter value the key was derived at; it seeds the
    /// MAC chain so no two epochs produce splicable byte streams.
    pub fn new(key: Key128, epoch: u64, policy: GroupCommitPolicy) -> Journal {
        Journal {
            key,
            chain: genesis_chain(epoch),
            epoch,
            next_seq: 1,
            durable: Vec::new(),
            pending: Vec::new(),
            pending_records: 0,
            pending_since: 0,
            policy,
            stats: JournalStats::default(),
            wedged: false,
            base_seq: 0,
            base_chain: genesis_chain(epoch),
            trimmed_bytes: 0,
        }
    }

    /// Appends one sealed record to the pending group; returns its sequence
    /// number. `now` is the caller's monotonic tick, used only to age the
    /// group for [`should_flush`](Self::should_flush).
    ///
    /// Deterministic by construction: the nonce is the sequence counter, no
    /// RNG is drawn, so journaling is invisible to seeded runs.
    pub fn append(&mut self, kind: u8, body: &[u8], now: u64) -> u64 {
        debug_assert!(!self.wedged, "append on a wedged journal");
        let seq = self.next_seq;
        self.next_seq += 1;
        let aad = record_aad(&self.chain, kind, seq);
        let ct = gcm::seal(&self.key, &Nonce12::from_counter(seq), &aad, body);
        self.chain = advance_chain(&self.chain, seq, kind, &ct);
        if self.pending_records == 0 {
            self.pending_since = now;
        }
        self.pending.extend_from_slice(&seq.to_le_bytes());
        self.pending.push(kind);
        self.pending
            .extend_from_slice(&(ct.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(&ct);
        self.pending.extend_from_slice(&self.chain);
        self.pending_records += 1;
        self.stats.records += 1;
        seq
    }

    /// Whether the group-commit policy calls for a flush at tick `now`.
    pub fn should_flush(&self, now: u64) -> bool {
        self.pending_records >= self.policy.max_records
            || (self.pending_records > 0
                && now >= self.pending_since.saturating_add(self.policy.max_age))
    }

    /// Flushes the pending group to durable storage. Returns the byte
    /// offset the group landed at and its length, or `None` if nothing was
    /// pending.
    pub fn flush(&mut self) -> Option<(u64, usize)> {
        self.flush_with(FlushDamage::None)
    }

    /// Flushes the pending group, applying `damage` from the fault layer.
    /// A damaged flush wedges the journal: the process is considered dead
    /// mid-write and only [`recover`] makes sense afterwards.
    pub fn flush_with(&mut self, damage: FlushDamage) -> Option<(u64, usize)> {
        if self.pending.is_empty() {
            return None;
        }
        // Logical stream offset: physical suffix position plus whatever a
        // compaction trimmed, so replication acks stay stable across cuts.
        let phys = self.durable.len();
        let offset = self.trimmed_bytes + phys as u64;
        let group = std::mem::take(&mut self.pending);
        self.pending_records = 0;
        let written = match damage {
            FlushDamage::None => {
                self.durable.extend_from_slice(&group);
                group.len()
            }
            FlushDamage::Torn(n) => {
                let keep = n.min(group.len());
                self.durable.extend_from_slice(&group[..keep]);
                self.wedged = true;
                keep
            }
            FlushDamage::CorruptBit(i) => {
                self.durable.extend_from_slice(&group);
                let bit = i % (group.len() * 8);
                let at = phys + bit / 8;
                self.durable[at] ^= 1 << (bit % 8);
                self.wedged = true;
                group.len()
            }
        };
        self.stats.flushes += 1;
        self.stats.bytes_sealed += written as u64;
        Some((offset, written))
    }

    /// The durable byte stream that survives a crash: the records after the
    /// compaction cut (`base_seq`), or the whole epoch stream if no
    /// [`truncate_prefix`](Self::truncate_prefix) ever ran.
    pub fn durable(&self) -> &[u8] {
        &self.durable
    }

    /// Length of the surviving durable byte suffix (physical bytes of
    /// [`durable`](Self::durable)).
    pub fn durable_len(&self) -> u64 {
        self.durable.len() as u64
    }

    /// Logical end offset of the durable stream: trimmed prefix plus the
    /// surviving suffix. Replication acknowledgements compare against this.
    pub fn durable_end(&self) -> u64 {
        self.trimmed_bytes + self.durable.len() as u64
    }

    /// Logical byte offset at which [`durable`](Self::durable) starts —
    /// the bytes a compaction truncated behind the snapshot cut.
    pub fn trimmed_bytes(&self) -> u64 {
        self.trimmed_bytes
    }

    /// Sequence number of the compaction cut: the last record truncated
    /// behind a snapshot (0 if the stream is whole from genesis).
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// MAC-chain state at the compaction cut — what [`recover_from`] needs
    /// to authenticate the surviving suffix. Equals the epoch genesis chain
    /// while `base_seq` is 0.
    pub fn base_chain(&self) -> [u8; 16] {
        self.base_chain
    }

    /// Current head of the MAC chain (state after the last appended
    /// record). Sealed into snapshots so a compacted `(snapshot, tail)`
    /// pair carries its own trusted recovery anchor.
    pub fn chain(&self) -> [u8; 16] {
        self.chain
    }

    /// Truncates every durable record with sequence number ≤ `upto_seq`
    /// behind a compaction cut. Only whole, flushed records are removed;
    /// the MAC chain, sequence counter and logical byte offsets are
    /// preserved across the cut, so later appends and replication
    /// acknowledgements continue unchanged. Returns the number of records
    /// removed (0 when `upto_seq` is at or before the current cut, or the
    /// journal is wedged).
    ///
    /// The caller must hold a sealed snapshot covering at least `upto_seq`
    /// before truncating — afterwards the prefix is unrecoverable from the
    /// journal alone.
    pub fn truncate_prefix(&mut self, upto_seq: u64) -> u64 {
        if self.wedged || upto_seq <= self.base_seq {
            return 0;
        }
        let mut pos = 0usize;
        let mut seq = self.base_seq;
        let mut chain = self.base_chain;
        while pos + HEADER_LEN <= self.durable.len() {
            let rest = &self.durable[pos..];
            let rec_seq = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            let ct_len = u32::from_le_bytes(rest[9..13].try_into().expect("4 bytes")) as usize;
            let end = pos + HEADER_LEN + ct_len + CHAIN_TAG_LEN;
            if rec_seq > upto_seq || end > self.durable.len() {
                break;
            }
            seq = rec_seq;
            chain.copy_from_slice(&self.durable[end - CHAIN_TAG_LEN..end]);
            pos = end;
        }
        if pos == 0 {
            return 0;
        }
        let removed = seq - self.base_seq;
        self.durable.drain(..pos);
        self.trimmed_bytes += pos as u64;
        self.base_seq = seq;
        self.base_chain = chain;
        self.stats.compactions += 1;
        self.stats.truncated_records += removed;
        removed
    }

    /// Sequence number of the most recently appended record (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records appended but not yet flushed.
    pub fn pending_records(&self) -> usize {
        self.pending_records
    }

    /// Bytes sitting in the pending group-commit buffer.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// The configured group-commit policy.
    pub fn policy(&self) -> GroupCommitPolicy {
        self.policy
    }

    /// The journal epoch (trusted counter value at creation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Flush/byte counters for the metrics layer.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Whether a damaged flush has wedged this journal.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }
}

/// Recovers the longest authentic record prefix from durable journal
/// bytes. Walks the chain from the epoch genesis: any torn tail, bit-flip,
/// sequence gap or cross-epoch splice terminates the walk, and everything
/// from that offset on is reported truncated — never replayed.
pub fn recover(key: &Key128, epoch: u64, bytes: &[u8]) -> Recovered {
    recover_from(key, 0, genesis_chain(epoch), bytes)
}

/// Recovers the longest authentic record suffix of a *compacted* journal:
/// `bytes` starts at the record after `base_seq`, and `base_chain` is the
/// MAC-chain state at the cut. The anchor must come from a trusted source
/// — a sealed snapshot's `(journal_seq, journal_chain)` watermark or the
/// live [`Journal::base_seq`]/[`Journal::base_chain`] — because the chain
/// walk can only authenticate bytes *relative to* it. `base_seq == 0` with
/// the epoch genesis chain is exactly [`recover`].
pub fn recover_from(key: &Key128, base_seq: u64, base_chain: [u8; 16], bytes: &[u8]) -> Recovered {
    let mut records = Vec::new();
    let mut chain = base_chain;
    let mut expected_seq = base_seq + 1;
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < HEADER_LEN {
            break;
        }
        let seq = u64::from_le_bytes(rest[..8].try_into().unwrap());
        let kind = rest[8];
        let ct_len = u32::from_le_bytes(rest[9..13].try_into().unwrap()) as usize;
        if seq != expected_seq
            || ct_len < gcm::TAG_LEN
            || rest.len() < HEADER_LEN + ct_len + CHAIN_TAG_LEN
        {
            break;
        }
        let ct = &rest[HEADER_LEN..HEADER_LEN + ct_len];
        let tag = &rest[HEADER_LEN + ct_len..HEADER_LEN + ct_len + CHAIN_TAG_LEN];
        let aad = record_aad(&chain, kind, seq);
        let body = match gcm::open(key, &Nonce12::from_counter(seq), &aad, ct) {
            Ok(b) => b,
            Err(_) => break,
        };
        let next_chain = advance_chain(&chain, seq, kind, ct);
        if tag != next_chain {
            break;
        }
        chain = next_chain;
        records.push(JournalRecord { seq, kind, body });
        expected_seq += 1;
        pos += HEADER_LEN + ct_len + CHAIN_TAG_LEN;
    }
    Recovered {
        records,
        valid_len: pos,
        truncated: pos != bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key128 {
        Key128::from_bytes([7u8; 16])
    }

    fn filled(policy: GroupCommitPolicy, n: u64) -> Journal {
        let mut j = Journal::new(key(), 3, policy);
        for i in 0..n {
            j.append((i % 3) as u8 + 1, format!("body-{i}").as_bytes(), i);
            if j.should_flush(i) {
                j.flush();
            }
        }
        j.flush();
        j
    }

    #[test]
    fn roundtrip_recovers_every_record() {
        let j = filled(GroupCommitPolicy::batched(4, 10), 11);
        let r = recover(&key(), 3, j.durable());
        assert!(!r.truncated);
        assert_eq!(r.valid_len, j.durable().len());
        assert_eq!(r.records.len(), 11);
        for (i, rec) in r.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.body, format!("body-{i}").as_bytes());
        }
    }

    #[test]
    fn group_commit_policy_batches_and_ages() {
        let mut j = Journal::new(key(), 1, GroupCommitPolicy::batched(3, 5));
        j.append(1, b"a", 0);
        assert!(!j.should_flush(0), "one record, fresh: no flush");
        j.append(1, b"b", 1);
        j.append(1, b"c", 2);
        assert!(j.should_flush(2), "count threshold reached");
        j.flush();
        assert_eq!(j.stats().flushes, 1);
        j.append(1, b"d", 10);
        assert!(!j.should_flush(12));
        assert!(j.should_flush(15), "age threshold reached");
        // immediate() flushes after every append
        let mut im = Journal::new(key(), 1, GroupCommitPolicy::immediate());
        im.append(1, b"x", 0);
        assert!(im.should_flush(0));
    }

    #[test]
    fn torn_tail_is_truncated_never_replayed() {
        let j = filled(GroupCommitPolicy::immediate(), 6);
        let full = j.durable().to_vec();
        // Cut mid-way through the last record.
        for cut in [
            full.len() - 1,
            full.len() - CHAIN_TAG_LEN - 3,
            full.len() - 40,
        ] {
            let r = recover(&key(), 3, &full[..cut]);
            assert!(r.truncated);
            assert!(r.records.len() < 6, "torn record must not be replayed");
            assert!(r.valid_len <= cut);
            // The surviving prefix is exactly the first N intact records.
            for (i, rec) in r.records.iter().enumerate() {
                assert_eq!(rec.body, format!("body-{i}").as_bytes());
            }
        }
    }

    #[test]
    fn damaged_flush_wedges_and_recovery_truncates() {
        let mut j = Journal::new(key(), 3, GroupCommitPolicy::batched(8, 100));
        for i in 0..4 {
            j.append(1, format!("body-{i}").as_bytes(), i);
        }
        j.flush();
        let good = j.durable().len();
        for i in 4..8 {
            j.append(1, format!("body-{i}").as_bytes(), i);
        }
        j.flush_with(FlushDamage::Torn(17));
        assert!(j.is_wedged());
        let r = recover(&key(), 3, j.durable());
        assert_eq!(r.records.len(), 4, "only the intact group replays");
        assert_eq!(r.valid_len, good);
        assert!(r.truncated);
    }

    #[test]
    fn bit_flip_terminates_the_chain() {
        let j = filled(GroupCommitPolicy::immediate(), 5);
        let len = j.durable().len();
        for bit in [0usize, len * 4, len * 8 - 1] {
            let mut bytes = j.durable().to_vec();
            bytes[bit / 8] ^= 1 << (bit % 8);
            let r = recover(&key(), 3, &bytes);
            assert!(r.truncated, "bit {bit} must be detected");
            assert!(r.records.len() < 5);
            for (i, rec) in r.records.iter().enumerate() {
                assert_eq!(rec.body, format!("body-{i}").as_bytes(), "prefix intact");
            }
        }
    }

    #[test]
    fn truncate_prefix_preserves_chain_and_offsets() {
        let mut j = filled(GroupCommitPolicy::batched(4, 10), 12);
        let full = j.durable().to_vec();
        let removed = j.truncate_prefix(7);
        assert_eq!(removed, 7);
        assert_eq!(j.base_seq(), 7);
        assert_eq!(j.stats().compactions, 1);
        assert_eq!(j.stats().truncated_records, 7);
        assert_eq!(j.durable_end(), full.len() as u64, "logical end unchanged");
        assert_eq!(
            j.trimmed_bytes() + j.durable().len() as u64,
            full.len() as u64
        );
        // The surviving suffix is bit-identical to the uncompacted stream's.
        assert_eq!(j.durable(), &full[j.trimmed_bytes() as usize..]);
        // The anchored walk authenticates exactly records 8..=12.
        let r = recover_from(&key(), j.base_seq(), j.base_chain(), j.durable());
        assert!(!r.truncated);
        assert_eq!(r.records.len(), 5);
        for (i, rec) in r.records.iter().enumerate() {
            assert_eq!(rec.seq, 8 + i as u64);
            assert_eq!(rec.body, format!("body-{}", 7 + i).as_bytes());
        }
        // Appends after the cut keep chaining: flush offsets stay logical.
        let mut j2 = j.clone();
        j2.append(1, b"after-cut", 99);
        let (off, _) = j2.flush().expect("flushes");
        assert_eq!(off, full.len() as u64, "flush offset is logical");
        let r = recover_from(&key(), j2.base_seq(), j2.base_chain(), j2.durable());
        assert_eq!(r.records.last().expect("records").body, b"after-cut");
        assert!(!r.truncated);
    }

    #[test]
    fn truncate_prefix_cuts_only_at_record_boundaries() {
        let mut j = filled(GroupCommitPolicy::batched(3, 10), 9);
        // Watermark 0 / at the cut: nothing removed.
        assert_eq!(j.truncate_prefix(0), 0);
        assert_eq!(j.truncate_prefix(4), 4);
        assert_eq!(j.truncate_prefix(4), 0, "cut is idempotent");
        // Truncation past the durable end stops at the last whole record.
        assert_eq!(j.truncate_prefix(u64::MAX), 5);
        assert_eq!(j.base_seq(), 9);
        assert!(j.durable().is_empty());
        let r = recover_from(&key(), j.base_seq(), j.base_chain(), j.durable());
        assert!(r.records.is_empty() && !r.truncated);
        // A tampered anchor refuses to authenticate the suffix.
        let mut k = filled(GroupCommitPolicy::immediate(), 6);
        k.truncate_prefix(3);
        let mut bad = k.base_chain();
        bad[0] ^= 1;
        let r = recover_from(&key(), k.base_seq(), bad, k.durable());
        assert!(r.records.is_empty() && r.truncated);
    }

    #[test]
    fn epoch_splice_and_wrong_key_are_rejected() {
        let j = filled(GroupCommitPolicy::immediate(), 3);
        let r = recover(&key(), 4, j.durable());
        assert_eq!(r.records.len(), 0, "wrong epoch: genesis chain differs");
        assert!(r.truncated);
        let r = recover(&Key128::from_bytes([8u8; 16]), 3, j.durable());
        assert_eq!(r.records.len(), 0, "wrong key");
        // Concatenating two epochs' streams must not extend the chain.
        let j2 = filled(GroupCommitPolicy::immediate(), 2);
        let mut spliced = j.durable().to_vec();
        spliced.extend_from_slice(j2.durable());
        let r = recover(&key(), 3, &spliced);
        assert_eq!(r.records.len(), 3, "foreign epoch tail truncated");
        assert!(r.truncated);
    }
}
