//! Pre-allocated untrusted payload pool.
//!
//! Precursor's trusted threads need slots in *untrusted* memory to store
//! client payloads. Calling out of the enclave per allocation would cost an
//! ocall (~13,100 cycles) each time, so the paper pre-allocates a memory pool
//! and issues a *single batched ocall* only when the pool must grow (§3.8,
//! §4). [`SlabPool`] reproduces that: it manages offsets within an
//! externally-owned buffer using size-class free lists plus a bump pointer,
//! and reports when the caller has to grow the buffer (the modelled ocall).

/// A byte range handed out by the pool. This is the paper's `ptr` stored in
/// the enclave hash table, pointing at untrusted payload memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolRange {
    /// Offset of the slot within the pooled buffer.
    pub offset: usize,
    /// Usable length in bytes (the requested length).
    pub len: usize,
    /// Size class the slot was carved from (capacity ≥ `len`).
    class: u8,
}

impl PoolRange {
    /// End offset (exclusive) of the usable range.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// Capacity of the underlying slot (the size class's full width, ≥
    /// `len`). Per-client memory quotas account in these units, matching
    /// what [`PoolStats::bytes_in_use`] charges.
    pub fn capacity(&self) -> usize {
        class_size(self.class)
    }
}

/// The slot capacity an allocation of `len` bytes would occupy, without
/// allocating (`None` when `len` exceeds the largest size class). Lets
/// quota checks reject an oversized request *before* touching the pool.
pub fn slot_capacity(len: usize) -> Option<usize> {
    class_of(len).map(class_size)
}

/// Allocation statistics for diagnostics and the EPC/ocall accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful allocations.
    pub allocations: u64,
    /// Frees returned to the size-class lists.
    pub frees: u64,
    /// Times the pool ran out of space (each is one modelled ocall).
    pub grow_events: u64,
    /// Bytes currently handed out (by slot capacity, not request size).
    pub bytes_in_use: usize,
}

const MIN_CLASS_SHIFT: u32 = 4; // 16-byte smallest slot
const NUM_CLASSES: usize = 16; // 16 B … 512 KiB

fn class_of(len: usize) -> Option<u8> {
    let len = len.max(1);
    let bits = usize::BITS - (len - 1).leading_zeros();
    let class = bits.saturating_sub(MIN_CLASS_SHIFT);
    if (class as usize) < NUM_CLASSES {
        Some(class as u8)
    } else {
        None
    }
}

fn class_size(class: u8) -> usize {
    1usize << (class as u32 + MIN_CLASS_SHIFT)
}

/// Offset allocator over an external buffer.
///
/// # Example
///
/// ```
/// use precursor_storage::pool::SlabPool;
///
/// let mut pool = SlabPool::new(4096);
/// let a = pool.alloc(100).unwrap();
/// let b = pool.alloc(100).unwrap();
/// assert_ne!(a.offset, b.offset);
/// let a_offset = a.offset;
/// pool.free(a);
/// // freed slots are recycled for the same size class
/// let c = pool.alloc(100).unwrap();
/// assert_eq!(c.offset, a_offset);
/// ```
#[derive(Debug, Clone)]
pub struct SlabPool {
    capacity: usize,
    bump: usize,
    free_lists: [Vec<usize>; NUM_CLASSES],
    stats: PoolStats,
}

impl SlabPool {
    /// Creates a pool managing `capacity` bytes of external buffer.
    pub fn new(capacity: usize) -> SlabPool {
        SlabPool {
            capacity,
            bump: 0,
            free_lists: std::array::from_fn(|_| Vec::new()),
            stats: PoolStats::default(),
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes not yet carved out by the bump pointer (free-list slots are
    /// additional reusable space).
    pub fn remaining(&self) -> usize {
        self.capacity - self.bump
    }

    /// Allocation statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Allocates a slot of at least `len` bytes.
    ///
    /// Returns `None` when the pool is exhausted (or `len` exceeds the
    /// largest size class); the caller should [`grow`](Self::grow) the
    /// backing buffer — that is the modelled ocall — and retry.
    pub fn alloc(&mut self, len: usize) -> Option<PoolRange> {
        let class = class_of(len)?;
        let size = class_size(class);
        let offset = if let Some(off) = self.free_lists[class as usize].pop() {
            off
        } else {
            if self.bump + size > self.capacity {
                self.stats.grow_events += 1;
                return None;
            }
            let off = self.bump;
            self.bump += size;
            off
        };
        self.stats.allocations += 1;
        self.stats.bytes_in_use += size;
        Some(PoolRange { offset, len, class })
    }

    /// Returns a slot to its size class for reuse.
    pub fn free(&mut self, range: PoolRange) {
        self.stats.frees += 1;
        self.stats.bytes_in_use -= class_size(range.class);
        self.free_lists[range.class as usize].push(range.offset);
    }

    /// Extends the managed capacity by `extra` bytes (after the caller grew
    /// the backing buffer via the modelled ocall).
    pub fn grow(&mut self, extra: usize) {
        self.capacity += extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_up_to_power_of_two() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(17), Some(1));
        assert_eq!(class_of(32), Some(1));
        assert_eq!(class_of(100), Some(3)); // 128-byte class
        assert_eq!(class_size(3), 128);
        assert_eq!(class_of(512 * 1024), Some(15));
        assert_eq!(class_of(512 * 1024 + 1), None);
    }

    #[test]
    fn slot_capacity_matches_allocation_accounting() {
        let mut pool = SlabPool::new(1 << 16);
        for len in [1usize, 16, 100, 1000, 4096] {
            let expected = slot_capacity(len).unwrap();
            let before = pool.stats().bytes_in_use;
            let r = pool.alloc(len).unwrap();
            assert_eq!(r.capacity(), expected);
            assert_eq!(pool.stats().bytes_in_use - before, expected);
        }
        assert_eq!(slot_capacity(512 * 1024 + 1), None);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut pool = SlabPool::new(1 << 20);
        let mut ranges = Vec::new();
        for len in [10usize, 100, 1000, 16, 64, 64, 4096] {
            ranges.push(pool.alloc(len).unwrap());
        }
        for (i, a) in ranges.iter().enumerate() {
            for b in &ranges[i + 1..] {
                assert!(
                    a.end() <= b.offset || b.end() <= a.offset,
                    "overlap: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn free_recycles_same_class() {
        let mut pool = SlabPool::new(4096);
        let a = pool.alloc(100).unwrap();
        let a_off = a.offset;
        pool.free(a);
        let b = pool.alloc(120).unwrap(); // same 128-byte class
        assert_eq!(b.offset, a_off);
    }

    #[test]
    fn exhaustion_reports_grow_event_and_grow_restores() {
        let mut pool = SlabPool::new(64);
        assert!(pool.alloc(64).is_some());
        assert!(pool.alloc(64).is_none());
        assert_eq!(pool.stats().grow_events, 1);
        pool.grow(64);
        assert!(pool.alloc(64).is_some());
    }

    #[test]
    fn bytes_in_use_tracks_capacity_of_slots() {
        let mut pool = SlabPool::new(1 << 16);
        let r = pool.alloc(100).unwrap(); // 128-byte class
        assert_eq!(pool.stats().bytes_in_use, 128);
        pool.free(r);
        assert_eq!(pool.stats().bytes_in_use, 0);
        assert_eq!(pool.stats().frees, 1);
    }

    #[test]
    fn oversized_request_is_rejected_not_panicking() {
        let mut pool = SlabPool::new(1 << 30);
        assert!(pool.alloc(1 << 20).is_none());
    }

    #[test]
    fn churn_reuses_memory_bounded() {
        let mut pool = SlabPool::new(1 << 16);
        for _ in 0..10_000 {
            let r = pool.alloc(1000).unwrap();
            pool.free(r);
        }
        // bump should have advanced only once for the single live slot
        assert_eq!(pool.remaining(), (1 << 16) - 1024);
    }
}
