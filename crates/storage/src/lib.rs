//! Storage substrates for the Precursor reproduction.
//!
//! * [`robinhood`] — the open-addressing Robin Hood hash table the paper
//!   hosts *inside* the enclave (§4, citing Celis et al.): open addressing
//!   with backward-shift deletion, no chaining pointers, and explicit probe
//!   and memory accounting so the SGX model can charge EPC page touches.
//! * [`pool`] — the pre-allocated *untrusted* payload pool the server hands
//!   out slots from; growing the pool is the paper's single batched ocall.
//! * [`ring`] — per-client circular buffers for incoming requests and
//!   outgoing replies, written remotely with one-sided RDMA WRITEs; the
//!   producer tracks credits so clients never overwrite unprocessed data
//!   (§3.5, §3.7).
//!
//! # Example
//!
//! ```
//! use precursor_storage::robinhood::RobinHoodMap;
//!
//! let mut map = RobinHoodMap::new();
//! map.insert(b"k1".to_vec(), 42u32);
//! assert_eq!(map.get(&b"k1".to_vec()), Some(&42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod ring;
pub mod robinhood;

pub use pool::{PoolRange, SlabPool};
pub use ring::{RingConsumer, RingProducer};
pub use robinhood::{shard_of_hash, stable_key_hash, RobinHoodMap, ShardedRobinHoodMap};
