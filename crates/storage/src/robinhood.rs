//! Robin Hood open-addressing hash table.
//!
//! The Precursor paper keeps its in-enclave index in a Robin Hood hash table
//! (§4): open addressing bounds probe sequences tightly (good for EPC
//! locality) and avoids the chained pointers whose cache/TLB misses hurt
//! in-enclave lookups. This implementation uses backward-shift deletion, a
//! power-of-two capacity, and an FxHash-style mixer, and reports probe
//! counts and touched slots so the SGX model can charge page accesses.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};

/// FxHash-style multiply-xor hasher (deterministic across runs).
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        // Final avalanche so short keys spread over high bits too.
        let mut z = self.state;
        z ^= z >> 32;
        z = z.wrapping_mul(0xd6e8_feb8_6659_fd93);
        z ^= z >> 32;
        z
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

/// The stable FxHash of a key — the same hash [`RobinHoodMap`] buckets by
/// and [`shard_of_hash`] routes on. Exposed so every layer (server, bench
/// driver, tests) derives identical shard routing from the key bytes alone.
pub fn stable_key_hash<Q: Hash + ?Sized>(key: &Q) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// The shard owning `hash` among `shards` shards. Uses the *high* hash
/// bits via a multiply-shift reduction, so shard routing is independent of
/// the table's bucket choice (low bits) and — being a pure function of the
/// hash — trivially stable under table resizes.
pub fn shard_of_hash(hash: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (((hash >> 32) * shards as u64) >> 32) as usize
}

/// Probe statistics for one table operation, used for cost accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Number of slots inspected (≥1 for any operation on a nonempty table).
    pub probes: usize,
    /// Indices of the slots inspected, in order (for EPC page-touch
    /// modelling).
    pub slots: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Slot<K, V> {
    hash: u64,
    key: K,
    value: V,
}

/// An open-addressing Robin Hood hash map.
///
/// Capacities are powers of two; the table grows (×2) above 85 % load, the
/// highest load factor that keeps mean probe lengths short for Robin Hood
/// probing. Deletion uses backward shifting, so no tombstones accumulate.
///
/// # Example
///
/// ```
/// use precursor_storage::robinhood::RobinHoodMap;
///
/// let mut m = RobinHoodMap::new();
/// m.insert("a", 1);
/// m.insert("b", 2);
/// assert_eq!(m.remove(&"a"), Some(1));
/// assert_eq!(m.get(&"a"), None);
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RobinHoodMap<K, V> {
    slots: Vec<Option<Slot<K, V>>>,
    len: usize,
    resizes: u64,
}

const INITIAL_CAPACITY: usize = 2048;
const MAX_LOAD_PERCENT: usize = 85;

impl<K: Hash + Eq, V> RobinHoodMap<K, V> {
    /// Creates an empty map with the default initial capacity (2048 slots —
    /// the "subset of the hash table" Precursor initializes up front, §5.4).
    pub fn new() -> RobinHoodMap<K, V> {
        RobinHoodMap::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty map with at least `cap` slots (rounded up to a power
    /// of two, minimum 8).
    pub fn with_capacity(cap: usize) -> RobinHoodMap<K, V> {
        let cap = cap.next_power_of_two().max(8);
        RobinHoodMap {
            slots: (0..cap).map(|_| None).collect(),
            len: 0,
            resizes: 0,
        }
    }

    fn hash_of<Q: Hash + ?Sized>(key: &Q) -> u64 {
        stable_key_hash(key)
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn dib(&self, slot_idx: usize, hash: u64) -> usize {
        // distance from initial bucket, with wraparound
        let ideal = (hash as usize) & self.mask();
        (slot_idx + self.slots.len() - ideal) & self.mask()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots currently allocated.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Times the table has grown since creation.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Current load factor in `[0, 1)`.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.slots.len() as f64
    }

    /// Bytes occupied by the slot array, assuming `slot_bytes` per slot —
    /// callers pass the wire/enclave size of one entry so the SGX model can
    /// account EPC usage of the *modelled* layout rather than Rust's.
    pub fn memory_bytes(&self, slot_bytes: usize) -> usize {
        self.slots.len() * slot_bytes
    }

    /// Inserts or replaces; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.insert_tracked(key, value).0
    }

    /// Like [`insert`](Self::insert) but also reports probe statistics.
    pub fn insert_tracked(&mut self, key: K, value: V) -> (Option<V>, OpStats) {
        if (self.len + 1) * 100 > self.slots.len() * MAX_LOAD_PERCENT {
            self.grow();
        }
        let hash = Self::hash_of(&key);
        let mut idx = (hash as usize) & self.mask();
        let mut stats = OpStats {
            probes: 0,
            slots: Vec::new(),
        };
        let mut entry = Slot { hash, key, value };
        let mut entry_dib = 0usize;
        enum Action {
            Place,
            Replace,
            Swap(usize),
            Continue,
        }
        loop {
            stats.probes += 1;
            stats.slots.push(idx);
            let action = match &self.slots[idx] {
                None => Action::Place,
                Some(occ) if occ.hash == entry.hash && occ.key == entry.key => Action::Replace,
                Some(occ) => {
                    let occ_dib = self.dib(idx, occ.hash);
                    if occ_dib < entry_dib {
                        Action::Swap(occ_dib)
                    } else {
                        Action::Continue
                    }
                }
            };
            match action {
                Action::Place => {
                    self.slots[idx] = Some(entry);
                    self.len += 1;
                    return (None, stats);
                }
                Action::Replace => {
                    let occ = self.slots[idx].as_mut().expect("occupied");
                    let old = std::mem::replace(&mut occ.value, entry.value);
                    return (Some(old), stats);
                }
                Action::Swap(occ_dib) => {
                    // Rob the rich: displace the closer-to-home entry.
                    let occ = self.slots[idx].take().expect("occupied");
                    self.slots[idx] = Some(entry);
                    entry = occ;
                    entry_dib = occ_dib;
                }
                Action::Continue => {}
            }
            idx = (idx + 1) & self.mask();
            entry_dib += 1;
        }
    }

    /// Looks up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get_tracked(key).0
    }

    /// Like [`get`](Self::get) but also reports probe statistics.
    pub fn get_tracked<Q>(&self, key: &Q) -> (Option<&V>, OpStats)
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = Self::hash_of(key);
        let mut idx = (hash as usize) & self.mask();
        let mut dist = 0usize;
        let mut stats = OpStats {
            probes: 0,
            slots: Vec::new(),
        };
        loop {
            stats.probes += 1;
            stats.slots.push(idx);
            match &self.slots[idx] {
                None => return (None, stats),
                Some(occ) => {
                    if occ.hash == hash && occ.key.borrow() == key {
                        // Borrow gymnastics: re-borrow immutably for return.
                        let v = self.slots[idx].as_ref().map(|s| &s.value);
                        return (v, stats);
                    }
                    if self.dib(idx, occ.hash) < dist {
                        // Robin Hood invariant: the key cannot be further on.
                        return (None, stats);
                    }
                }
            }
            idx = (idx + 1) & self.mask();
            dist += 1;
            if dist > self.slots.len() {
                return (None, stats);
            }
        }
    }

    /// Mutable lookup.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = self.find_index(key)?;
        self.slots[idx].as_mut().map(|s| &mut s.value)
    }

    fn find_index<Q>(&self, key: &Q) -> Option<usize>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = Self::hash_of(key);
        let mut idx = (hash as usize) & self.mask();
        let mut dist = 0usize;
        loop {
            match &self.slots[idx] {
                None => return None,
                Some(occ) => {
                    if occ.hash == hash && occ.key.borrow() == key {
                        return Some(idx);
                    }
                    if self.dib(idx, occ.hash) < dist {
                        return None;
                    }
                }
            }
            idx = (idx + 1) & self.mask();
            dist += 1;
            if dist > self.slots.len() {
                return None;
            }
        }
    }

    /// Removes a key, returning its value. Uses backward-shift deletion.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.remove_tracked(key).0
    }

    /// Like [`remove`](Self::remove) but also reports probe statistics.
    pub fn remove_tracked<Q>(&mut self, key: &Q) -> (Option<V>, OpStats)
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut stats = OpStats {
            probes: 0,
            slots: Vec::new(),
        };
        let idx = match self.find_index(key) {
            Some(i) => i,
            None => {
                stats.probes = 1;
                return (None, stats);
            }
        };
        let removed = self.slots[idx].take().expect("found index is occupied");
        self.len -= 1;
        stats.probes += 1;
        stats.slots.push(idx);
        // Backward shift: pull subsequent displaced entries one slot closer.
        let mut hole = idx;
        loop {
            let next = (hole + 1) & self.mask();
            let shift = match &self.slots[next] {
                Some(occ) => self.dib(next, occ.hash) > 0,
                None => false,
            };
            stats.probes += 1;
            stats.slots.push(next);
            if !shift {
                break;
            }
            // slots[hole] is vacant: a swap moves the entry back one slot.
            self.slots.swap(hole, next);
            hole = next;
        }
        (Some(removed.value), stats)
    }

    /// Whether the map contains `key`.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Iterates over `(key, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| (&s.key, &s.value)))
    }

    /// Removes all entries, keeping the allocated capacity.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Mean distance-from-initial-bucket over all entries (diagnostic).
    pub fn mean_dib(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let total: usize = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| self.dib(i, s.hash)))
            .sum();
        total as f64 / self.len as f64
    }

    /// An order-independent digest of the map contents: the wrapping sum of
    /// one FxHash per `(key, value)` pair. Two maps hold the same entries
    /// iff their digests match (modulo hash collisions), regardless of slot
    /// layout — so a [`ShardedRobinHoodMap`]'s merged digest can be compared
    /// against an unsharded oracle.
    pub fn state_digest(&self) -> u64
    where
        V: Hash,
    {
        self.iter()
            .map(|(k, v)| {
                let mut h = FxHasher::default();
                k.hash(&mut h);
                v.hash(&mut h);
                h.finish()
            })
            .fold(0u64, u64::wrapping_add)
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
        self.len = 0;
        self.resizes += 1;
        for slot in old.into_iter().flatten() {
            self.insert(slot.key, slot.value);
        }
    }
}

impl<K: Hash + Eq, V> Default for RobinHoodMap<K, V> {
    fn default() -> Self {
        RobinHoodMap::new()
    }
}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for RobinHoodMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = RobinHoodMap::new();
        m.extend(iter);
        m
    }
}

impl<K: Hash + Eq, V> Extend<(K, V)> for RobinHoodMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// A hash map partitioned into `N` independent [`RobinHoodMap`] shards,
/// keyed by [`shard_of_hash`] over the stable key hash (§3.8's per-thread
/// enclave index partitioning). Each shard grows independently, so a hot
/// shard resizing never stalls or rehashes the others.
///
/// With one shard this is exactly a [`RobinHoodMap`]: same hash, same
/// bucket choice, same probe sequences — the degenerate case stays
/// bit-identical to the unsharded table.
#[derive(Debug, Clone)]
pub struct ShardedRobinHoodMap<K, V> {
    shards: Vec<RobinHoodMap<K, V>>,
}

impl<K: Hash + Eq, V> ShardedRobinHoodMap<K, V> {
    /// Creates a map with `shards` shards and at least `total_slots` slots
    /// overall, split evenly (each shard rounds up to a power of two,
    /// minimum 8).
    pub fn with_capacity(shards: usize, total_slots: usize) -> ShardedRobinHoodMap<K, V> {
        let shards = shards.max(1);
        let per_shard = (total_slots / shards).max(1);
        ShardedRobinHoodMap {
            shards: (0..shards)
                .map(|_| RobinHoodMap::with_capacity(per_shard))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to.
    pub fn shard_of<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        shard_of_hash(stable_key_hash(key), self.shards.len())
    }

    /// The shard at `idx` (for per-shard capacity/resize accounting).
    pub fn shard(&self, idx: usize) -> &RobinHoodMap<K, V> {
        &self.shards[idx]
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(RobinHoodMap::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(RobinHoodMap::is_empty)
    }

    /// Total allocated slots across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(RobinHoodMap::capacity).sum()
    }

    /// Inserts or replaces; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.insert_tracked(key, value).0
    }

    /// Like [`insert`](Self::insert) but also reports probe statistics
    /// (slot indices are local to the owning shard).
    pub fn insert_tracked(&mut self, key: K, value: V) -> (Option<V>, OpStats) {
        let s = self.shard_of(&key);
        self.shards[s].insert_tracked(key, value)
    }

    /// Looks up a key in its owning shard.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Like [`get`](Self::get) but also reports probe statistics.
    pub fn get_tracked<Q>(&self, key: &Q) -> (Option<&V>, OpStats)
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_of(key)].get_tracked(key)
    }

    /// Mutable lookup.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let s = self.shard_of(key);
        self.shards[s].get_mut(key)
    }

    /// Removes a key from its owning shard.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.remove_tracked(key).0
    }

    /// Like [`remove`](Self::remove) but also reports probe statistics.
    pub fn remove_tracked<Q>(&mut self, key: &Q) -> (Option<V>, OpStats)
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let s = self.shard_of(key);
        self.shards[s].remove_tracked(key)
    }

    /// Whether any shard contains `key`.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Iterates over `(key, value)` pairs, shard by shard in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.shards.iter().flat_map(RobinHoodMap::iter)
    }

    /// The merged order-independent digest: the wrapping sum of the
    /// per-shard [`RobinHoodMap::state_digest`]s, which by construction
    /// equals the digest of an unsharded map holding the same entries.
    pub fn state_digest(&self) -> u64
    where
        V: Hash,
    {
        self.shards
            .iter()
            .map(RobinHoodMap::state_digest)
            .fold(0u64, u64::wrapping_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_basics() {
        let mut m = RobinHoodMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("b", 2), None);
        assert_eq!(m.insert("a", 10), Some(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&"a"), Some(&10));
        assert_eq!(m.get(&"c"), None);
        assert_eq!(m.remove(&"a"), Some(10));
        assert_eq!(m.remove(&"a"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = RobinHoodMap::new();
        m.insert(7u64, vec![1]);
        m.get_mut(&7).unwrap().push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
        assert!(m.get_mut(&8).is_none());
    }

    #[test]
    fn grows_past_load_factor() {
        let mut m: RobinHoodMap<u64, u64> = RobinHoodMap::with_capacity(8);
        let initial_cap = m.capacity();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert!(m.capacity() > initial_cap);
        assert!(m.resizes() > 0);
        for i in 0..100 {
            assert_eq!(m.get(&i), Some(&(i * 2)), "key {i} lost in growth");
        }
        assert!(m.load_factor() <= 0.85 + 1e-9);
    }

    #[test]
    fn many_inserts_and_deletes_preserve_contents() {
        let mut m = RobinHoodMap::new();
        for i in 0u64..10_000 {
            m.insert(i, i);
        }
        for i in (0u64..10_000).step_by(2) {
            assert_eq!(m.remove(&i), Some(i));
        }
        assert_eq!(m.len(), 5_000);
        for i in 0u64..10_000 {
            if i % 2 == 0 {
                assert_eq!(m.get(&i), None);
            } else {
                assert_eq!(m.get(&i), Some(&i));
            }
        }
    }

    #[test]
    fn backward_shift_keeps_probes_short() {
        let mut m = RobinHoodMap::with_capacity(1 << 14);
        for i in 0u64..8_000 {
            m.insert(i, ());
        }
        for i in 0u64..4_000 {
            m.remove(&i);
        }
        // After heavy deletion, lookups of absent keys must still terminate
        // quickly (no tombstone chains).
        let (_, stats) = m.get_tracked(&999_999u64);
        assert!(stats.probes < 32, "probes: {}", stats.probes);
    }

    #[test]
    fn tracked_ops_report_slots() {
        let mut m = RobinHoodMap::new();
        let (_, ins) = m.insert_tracked(42u64, "v");
        assert_eq!(ins.probes, ins.slots.len());
        assert!(ins.probes >= 1);
        let (v, get) = m.get_tracked(&42u64);
        assert_eq!(v, Some(&"v"));
        assert_eq!(get.slots[0], ins.slots[ins.slots.len() - 1]);
    }

    #[test]
    fn mean_dib_is_small_at_moderate_load() {
        let mut m = RobinHoodMap::with_capacity(1 << 12);
        for i in 0u64..2_500 {
            m.insert(i, ());
        }
        assert!(m.mean_dib() < 2.0, "mean dib {}", m.mean_dib());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut m = RobinHoodMap::new();
        for i in 0u64..100 {
            m.insert(i, i);
        }
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let m: RobinHoodMap<u32, u32> = (0..50).map(|i| (i, i + 1)).collect();
        assert_eq!(m.len(), 50);
        let mut m2 = RobinHoodMap::new();
        m2.extend((0..10).map(|i| (i, i)));
        assert_eq!(m2.len(), 10);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut m = RobinHoodMap::new();
        for i in 0u64..64 {
            m.insert(i, i * i);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
        assert!(m.iter().all(|(k, v)| *v == k * k));
    }

    #[test]
    fn memory_bytes_uses_given_slot_size() {
        let m: RobinHoodMap<u64, u64> = RobinHoodMap::with_capacity(1024);
        assert_eq!(m.memory_bytes(88), 1024 * 88);
    }

    #[test]
    fn shard_of_hash_is_total_and_balanced() {
        for shards in 1..=8usize {
            let mut counts = vec![0u32; shards];
            for i in 0u64..4_000 {
                let s = shard_of_hash(stable_key_hash(&i), shards);
                assert!(s < shards);
                counts[s] += 1;
            }
            // FxHash avalanches, so no shard should be starved.
            for (s, &c) in counts.iter().enumerate() {
                assert!(c > 0, "shard {s}/{shards} received no keys");
            }
        }
    }

    #[test]
    fn single_shard_matches_plain_map_exactly() {
        let mut plain: RobinHoodMap<u64, u64> = RobinHoodMap::with_capacity(16);
        let mut sharded: ShardedRobinHoodMap<u64, u64> = ShardedRobinHoodMap::with_capacity(1, 16);
        for i in 0..500u64 {
            let (old_p, stats_p) = plain.insert_tracked(i, i * 3);
            let (old_s, stats_s) = sharded.insert_tracked(i, i * 3);
            assert_eq!(old_p, old_s);
            assert_eq!(stats_p, stats_s, "probe sequences diverge at key {i}");
        }
        assert_eq!(plain.capacity(), sharded.capacity());
        assert_eq!(plain.state_digest(), sharded.state_digest());
    }

    #[test]
    fn sharded_map_merges_to_unsharded_oracle() {
        let mut oracle: RobinHoodMap<u64, u64> = RobinHoodMap::new();
        let mut sharded: ShardedRobinHoodMap<u64, u64> =
            ShardedRobinHoodMap::with_capacity(4, 2048);
        for i in 0..3_000u64 {
            oracle.insert(i, i ^ 0xabcd);
            sharded.insert(i, i ^ 0xabcd);
        }
        for i in (0..3_000u64).step_by(3) {
            assert_eq!(oracle.remove(&i), sharded.remove(&i));
        }
        assert_eq!(oracle.len(), sharded.len());
        assert_eq!(oracle.state_digest(), sharded.state_digest());
        for i in 0..3_000u64 {
            assert_eq!(oracle.get(&i), sharded.get(&i));
        }
        // Every key sits in exactly the shard the router names.
        for s in 0..sharded.shard_count() {
            for (k, _) in sharded.shard(s).iter() {
                assert_eq!(sharded.shard_of(k), s);
            }
        }
    }

    #[test]
    fn byte_vector_keys() {
        let mut m = RobinHoodMap::new();
        m.insert(b"key-1".to_vec(), 1);
        m.insert(b"key-2".to_vec(), 2);
        assert_eq!(m.get(&b"key-1".to_vec()), Some(&1));
        // Borrow-based lookup through slices
        assert_eq!(m.get(&b"key-2"[..]), Some(&2));
    }
}
