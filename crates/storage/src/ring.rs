//! Per-client circular request/reply buffers.
//!
//! Precursor gives every client a *separate ring buffer* for incoming and
//! outgoing requests in the server's untrusted memory (§3.5). Clients write
//! records into their ring with one-sided RDMA WRITEs; a trusted thread polls
//! the ring and consumes records; periodically, the server writes the
//! consumer position ("credits") back to the client so it knows how much
//! space is free (§3.8) — clients must never overwrite unconsumed data.
//!
//! The byte storage itself lives in a registered memory region owned by the
//! transport; [`RingProducer`] and [`RingConsumer`] implement only the
//! *layout*: length-prefixed records, wrap markers, and the credit protocol.
//! Producer and consumer therefore work on the two ends of a connection
//! without sharing anything but the buffer bytes, exactly like real RDMA
//! peers.
//!
//! ## Record format
//!
//! ```text
//! [len: u32 LE][payload: len bytes][padding to 8-byte alignment]
//! ```
//!
//! A length of `u32::MAX` is a wrap marker: the next record starts at offset
//! zero. A length of `0` means "not yet written" (the consumer waits).

/// Record header size in bytes.
const HEADER: usize = 4;
/// Record alignment.
const ALIGN: usize = 8;
/// Wrap marker value.
const WRAP: u32 = u32::MAX;

fn record_span(len: usize) -> usize {
    (HEADER + len + ALIGN - 1) & !(ALIGN - 1)
}

/// Producer half: runs on the **client**, computing where in the remote ring
/// the next record goes and how much space remains.
///
/// # Example
///
/// ```
/// use precursor_storage::ring::{RingConsumer, RingProducer};
///
/// let mut buf = vec![0u8; 256];
/// let mut tx = RingProducer::new(buf.len());
/// let mut rx = RingConsumer::new(buf.len());
///
/// let off = tx.push(&mut buf, b"hello").unwrap();
/// assert_eq!(off, 0);
/// let rec = rx.pop(&mut buf).unwrap();
/// assert_eq!(rec, b"hello");
/// // consumer advances; its position flows back as credits
/// tx.update_credits(rx.consumed());
/// ```
#[derive(Debug, Clone)]
pub struct RingProducer {
    capacity: usize,
    /// Next write offset within the ring.
    write: usize,
    /// Total bytes written (monotonic).
    written: u64,
    /// Total bytes the consumer reported consuming (monotonic).
    consumed: u64,
}

impl RingProducer {
    /// Creates a producer for a ring of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a multiple of 8 or is < 64.
    pub fn new(capacity: usize) -> RingProducer {
        assert!(
            capacity >= 64 && capacity.is_multiple_of(ALIGN),
            "bad ring capacity"
        );
        RingProducer {
            capacity,
            write: 0,
            written: 0,
            consumed: 0,
        }
    }

    /// Bytes of free space the producer may still write into. Saturating:
    /// a credit word claiming more consumption than was ever written (e.g.
    /// a stale or corrupted credit WRITE under fault injection) clamps to
    /// "everything consumed" instead of wrapping.
    pub fn free_space(&self) -> usize {
        self.capacity
            .saturating_sub(self.written.saturating_sub(self.consumed) as usize)
    }

    /// Whether a record of `len` payload bytes currently fits, including any
    /// wrap waste it would incur at the current write position.
    pub fn fits(&self, len: usize) -> bool {
        let span = record_span(len);
        let contiguous = self.capacity - self.write;
        let needed = if span <= contiguous {
            span
        } else {
            contiguous + span
        };
        needed <= self.free_space()
    }

    /// Writes a record into `ring` (the local mirror of the remote buffer;
    /// over RDMA the same bytes are what the one-sided WRITE carries).
    /// Returns the offset the record was placed at, or `None` if it does not
    /// fit (the caller waits for credits).
    ///
    /// # Panics
    ///
    /// Panics if `ring.len()` differs from the configured capacity.
    pub fn push(&mut self, ring: &mut [u8], payload: &[u8]) -> Option<usize> {
        assert_eq!(ring.len(), self.capacity, "ring size mismatch");
        self.push_with(payload, |off, bytes| {
            ring[off..off + bytes.len()].copy_from_slice(bytes);
        })
    }

    /// Like [`push`](Self::push), but emits the bytes through `write(offset,
    /// bytes)` instead of a local slice — over RDMA, each call is one
    /// one-sided WRITE into the remote ring. At most two writes are issued
    /// per record (an optional wrap marker plus the record itself).
    pub fn push_with(
        &mut self,
        payload: &[u8],
        mut write: impl FnMut(usize, &[u8]),
    ) -> Option<usize> {
        if !self.fits(payload.len()) {
            return None;
        }
        let span = record_span(payload.len());
        if self.write + span > self.capacity {
            // Not enough contiguous room: emit a wrap marker and restart.
            let wasted = self.capacity - self.write;
            write(self.write, &WRAP.to_le_bytes()[..HEADER.min(wasted)]);
            self.written += wasted as u64;
            self.write = 0;
        }
        let off = self.write;
        let mut record = Vec::with_capacity(span);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(payload);
        // zero padding so stale bytes never masquerade as headers
        record.resize(span, 0);
        write(off, &record);
        self.write = (off + span) % self.capacity;
        self.written += span as u64;
        Some(off)
    }

    /// Applies a credit update: the consumer has consumed `consumed` total
    /// bytes. Stale (smaller) updates are ignored.
    pub fn update_credits(&mut self, consumed: u64) {
        if consumed > self.consumed {
            self.consumed = consumed;
        }
    }

    /// Total bytes written so far (monotonic), including wrap waste.
    pub fn written(&self) -> u64 {
        self.written
    }
}

/// Consumer half: runs on the **server**; a trusted thread polls it.
#[derive(Debug, Clone)]
pub struct RingConsumer {
    capacity: usize,
    read: usize,
    consumed: u64,
}

impl RingConsumer {
    /// Creates a consumer for a ring of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a multiple of 8 or is < 64.
    pub fn new(capacity: usize) -> RingConsumer {
        assert!(
            capacity >= 64 && capacity.is_multiple_of(ALIGN),
            "bad ring capacity"
        );
        RingConsumer {
            capacity,
            read: 0,
            consumed: 0,
        }
    }

    /// Polls the ring for the next record. Returns the payload (copied out,
    /// like the control-segment copy into the enclave) or `None` when the
    /// ring is empty at the current position. Consumed bytes are zeroed so
    /// stale headers can never masquerade as fresh records after wraparound.
    ///
    /// # Panics
    ///
    /// Panics if `ring.len()` differs from the configured capacity.
    pub fn pop(&mut self, ring: &mut [u8]) -> Option<Vec<u8>> {
        assert_eq!(ring.len(), self.capacity, "ring size mismatch");
        let mut off = self.read;
        let avail = self.capacity - off;
        if avail >= HEADER {
            let len = u32::from_le_bytes([ring[off], ring[off + 1], ring[off + 2], ring[off + 3]]);
            if len == WRAP {
                for b in &mut ring[off..] {
                    *b = 0;
                }
                self.consumed += avail as u64;
                self.read = 0;
                off = 0;
            } else if len == 0 {
                return None;
            }
        } else if avail > 0 {
            // Trailing sliver too small for a header: implicit wrap.
            if ring[off] == 0xff {
                for b in &mut ring[off..] {
                    *b = 0;
                }
                self.consumed += avail as u64;
                self.read = 0;
                off = 0;
            } else {
                return None;
            }
        }
        let len =
            u32::from_le_bytes([ring[off], ring[off + 1], ring[off + 2], ring[off + 3]]) as usize;
        if len == 0 || len == WRAP as usize {
            return None;
        }
        if off + HEADER + len > self.capacity {
            return None; // torn write; wait
        }
        let payload = ring[off + HEADER..off + HEADER + len].to_vec();
        let span = record_span(len);
        for b in &mut ring[off..off + span] {
            *b = 0;
        }
        self.read = (off + span) % self.capacity;
        self.consumed += span as u64;
        Some(payload)
    }

    /// Total bytes consumed (monotonic) — the credit value written back to
    /// the client.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cap: usize) -> (Vec<u8>, RingProducer, RingConsumer) {
        (
            vec![0u8; cap],
            RingProducer::new(cap),
            RingConsumer::new(cap),
        )
    }

    #[test]
    fn simple_push_pop() {
        let (mut buf, mut tx, mut rx) = pair(256);
        tx.push(&mut buf, b"alpha").unwrap();
        tx.push(&mut buf, b"beta").unwrap();
        assert_eq!(rx.pop(&mut buf).unwrap(), b"alpha");
        assert_eq!(rx.pop(&mut buf).unwrap(), b"beta");
        assert!(rx.pop(&mut buf).is_none());
    }

    #[test]
    fn empty_ring_pops_none() {
        let (mut buf, _tx, mut rx) = pair(128);
        assert!(rx.pop(&mut buf).is_none());
    }

    #[test]
    fn free_space_saturates_on_overclaimed_credits() {
        let (mut buf, mut tx, _rx) = pair(128);
        tx.push(&mut buf, b"record").unwrap();
        // A corrupted/forged credit word claims more consumption than was
        // ever produced; free_space must clamp, not wrap around.
        tx.update_credits(u64::MAX);
        assert_eq!(tx.free_space(), 128);
    }

    #[test]
    fn producer_blocks_without_credits() {
        let (mut buf, mut tx, mut rx) = pair(128);
        let payload = [7u8; 40];
        let mut pushed = 0;
        while tx.push(&mut buf, &payload).is_some() {
            pushed += 1;
        }
        assert!(pushed >= 2);
        // consumer drains one record and reports credits
        rx.pop(&mut buf).unwrap();
        tx.update_credits(rx.consumed());
        assert!(tx.push(&mut buf, &payload).is_some(), "credits freed space");
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut buf, mut tx, mut rx) = pair(256);
        let mut next_expected = 0u32;
        for i in 0u32..1_000 {
            let payload = i.to_le_bytes();
            loop {
                if tx.push(&mut buf, &payload).is_some() {
                    break;
                }
                // drain one and update credits
                let got = rx.pop(&mut buf).expect("ring full implies data available");
                assert_eq!(u32::from_le_bytes(got.try_into().unwrap()), next_expected);
                next_expected += 1;
                tx.update_credits(rx.consumed());
            }
        }
        // drain the rest in order
        while let Some(got) = rx.pop(&mut buf) {
            assert_eq!(u32::from_le_bytes(got.try_into().unwrap()), next_expected);
            next_expected += 1;
        }
        assert_eq!(next_expected, 1_000);
    }

    #[test]
    fn variable_sizes_with_wrap() {
        let (mut buf, mut tx, mut rx) = pair(512);
        let sizes = [1usize, 60, 13, 100, 7, 250, 32, 64];
        let mut sent = Vec::new();
        for (i, &s) in sizes.iter().cycle().take(200).enumerate() {
            let payload: Vec<u8> = (0..s).map(|j| (i + j) as u8).collect();
            loop {
                if tx.push(&mut buf, &payload).is_some() {
                    sent.push(payload.clone());
                    break;
                }
                let got = rx.pop(&mut buf).unwrap();
                assert_eq!(got, sent.remove(0));
                tx.update_credits(rx.consumed());
            }
        }
        while let Some(got) = rx.pop(&mut buf) {
            assert_eq!(got, sent.remove(0));
        }
        assert!(sent.is_empty());
    }

    #[test]
    fn stale_credit_updates_are_ignored() {
        let (mut buf, mut tx, mut rx) = pair(128);
        tx.push(&mut buf, &[1u8; 40]).unwrap();
        rx.pop(&mut buf).unwrap();
        tx.update_credits(rx.consumed());
        let free_after = tx.free_space();
        tx.update_credits(0); // stale
        assert_eq!(tx.free_space(), free_after);
    }

    #[test]
    fn record_span_alignment() {
        assert_eq!(record_span(0), 8);
        assert_eq!(record_span(1), 8);
        assert_eq!(record_span(4), 8);
        assert_eq!(record_span(5), 16);
        assert_eq!(record_span(12), 16);
        assert_eq!(record_span(13), 24);
    }

    #[test]
    #[should_panic(expected = "bad ring capacity")]
    fn rejects_unaligned_capacity() {
        let _ = RingProducer::new(100);
    }

    #[test]
    #[should_panic(expected = "ring size mismatch")]
    fn rejects_wrong_buffer() {
        let mut tx = RingProducer::new(128);
        let mut buf = vec![0u8; 64];
        let _ = tx.push(&mut buf, b"x");
    }

    #[test]
    fn fits_is_consistent_with_push() {
        let (mut buf, mut tx, _rx) = pair(128);
        while tx.fits(16) {
            assert!(tx.push(&mut buf, &[0u8; 16]).is_some());
        }
        assert!(tx.push(&mut buf, &[0u8; 16]).is_none());
    }
}
