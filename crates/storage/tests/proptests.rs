//! Property-based tests: the Robin Hood map against a `HashMap` model, the
//! ring buffer's FIFO contract, and the pool's non-overlap invariant.

use std::collections::HashMap;
use std::collections::VecDeque;

use proptest::prelude::*;

use precursor_storage::pool::SlabPool;
use precursor_storage::ring::{RingConsumer, RingProducer};
use precursor_storage::robinhood::RobinHoodMap;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MapOp::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| MapOp::Remove(k % 512)),
        any::<u16>().prop_map(|k| MapOp::Get(k % 512)),
    ]
}

proptest! {
    #[test]
    fn robinhood_matches_hashmap_model(ops in prop::collection::vec(map_op(), 1..2000)) {
        let mut sut: RobinHoodMap<u16, u32> = RobinHoodMap::with_capacity(8);
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(sut.insert(k, v), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(sut.remove(&k), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(sut.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(sut.len(), model.len());
        }
        // full-content check at the end
        for (k, v) in model.iter() {
            prop_assert_eq!(sut.get(k), Some(v));
        }
        prop_assert_eq!(sut.iter().count(), model.len());
    }

    #[test]
    fn robinhood_probe_counts_stay_bounded(keys in prop::collection::hash_set(any::<u64>(), 1..800)) {
        let mut m = RobinHoodMap::with_capacity(2048);
        let mut worst = 0usize;
        for &k in &keys {
            let (_, stats) = m.insert_tracked(k, ());
            worst = worst.max(stats.probes);
        }
        // 800 entries in ≥1024 slots: Robin Hood keeps worst-case probes low
        prop_assert!(worst <= 64, "worst probe count {worst}");
        for &k in &keys {
            prop_assert!(m.contains_key(&k));
        }
    }

    #[test]
    fn ring_is_fifo_under_random_interleaving(
        payload_lens in prop::collection::vec(1usize..120, 1..300),
        drain_bias in 0.0f64..1.0,
    ) {
        let cap = 1024;
        let mut buf = vec![0u8; cap];
        let mut tx = RingProducer::new(cap);
        let mut rx = RingConsumer::new(cap);
        let mut queued: VecDeque<Vec<u8>> = VecDeque::new();
        let mut rng_state = 0x12345678u64;
        let mut next_rand = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) as f64 / (1u64 << 31) as f64
        };
        for (i, &len) in payload_lens.iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|j| (i * 31 + j) as u8).collect();
            loop {
                if next_rand() < drain_bias {
                    if let Some(got) = rx.pop(&mut buf) {
                        prop_assert_eq!(got, queued.pop_front().unwrap());
                        tx.update_credits(rx.consumed());
                    }
                }
                if tx.push(&mut buf, &payload).is_some() {
                    queued.push_back(payload.clone());
                    break;
                }
                let got = rx.pop(&mut buf).unwrap();
                prop_assert_eq!(got, queued.pop_front().unwrap());
                tx.update_credits(rx.consumed());
            }
        }
        while let Some(got) = rx.pop(&mut buf) {
            prop_assert_eq!(got, queued.pop_front().unwrap());
        }
        prop_assert!(queued.is_empty());
    }

    #[test]
    fn pool_allocations_never_overlap(sizes in prop::collection::vec(1usize..5000, 1..200),
                                      free_mask in any::<u64>()) {
        let mut pool = SlabPool::new(1 << 22);
        let mut live: Vec<precursor_storage::pool::PoolRange> = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            if let Some(r) = pool.alloc(s) {
                for other in &live {
                    prop_assert!(r.end() <= other.offset || other.end() <= r.offset);
                }
                live.push(r);
            }
            if free_mask >> (i % 64) & 1 == 1 {
                if let Some(r) = live.pop() {
                    pool.free(r);
                }
            }
        }
    }
}
