//! Property-based tests: the Robin Hood map against a `HashMap` model, the
//! ring buffer's FIFO contract, and the pool's non-overlap invariant.
//! Driven by seeded loops over the in-repo deterministic RNG.

use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::VecDeque;

use precursor_sim::rng::SimRng;
use precursor_storage::pool::SlabPool;
use precursor_storage::ring::{RingConsumer, RingProducer};
use precursor_storage::robinhood::RobinHoodMap;

const CASES: usize = 32;

#[test]
fn robinhood_matches_hashmap_model() {
    let mut rng = SimRng::seed_from(0xe001);
    for _ in 0..CASES {
        let mut sut: RobinHoodMap<u16, u32> = RobinHoodMap::with_capacity(8);
        let mut model: HashMap<u16, u32> = HashMap::new();
        let ops = 1 + rng.gen_range(1999) as usize;
        for _ in 0..ops {
            let k = (rng.next_u32() as u16) % 512;
            match rng.gen_range(3) {
                0 => {
                    let v = rng.next_u32();
                    assert_eq!(sut.insert(k, v), model.insert(k, v));
                }
                1 => {
                    assert_eq!(sut.remove(&k), model.remove(&k));
                }
                _ => {
                    assert_eq!(sut.get(&k), model.get(&k));
                }
            }
            assert_eq!(sut.len(), model.len());
        }
        // full-content check at the end
        for (k, v) in model.iter() {
            assert_eq!(sut.get(k), Some(v));
        }
        assert_eq!(sut.iter().count(), model.len());
    }
}

#[test]
fn robinhood_probe_counts_stay_bounded() {
    let mut rng = SimRng::seed_from(0xe002);
    for _ in 0..CASES {
        let n = 1 + rng.gen_range(799) as usize;
        let mut keys: HashSet<u64> = HashSet::new();
        while keys.len() < n {
            keys.insert(rng.next_u64());
        }
        let mut m = RobinHoodMap::with_capacity(2048);
        let mut worst = 0usize;
        for &k in &keys {
            let (_, stats) = m.insert_tracked(k, ());
            worst = worst.max(stats.probes);
        }
        // ≤800 entries in ≥1024 slots: Robin Hood keeps worst-case probes low
        assert!(worst <= 64, "worst probe count {worst}");
        for &k in &keys {
            assert!(m.contains_key(&k));
        }
    }
}

#[test]
fn ring_is_fifo_under_random_interleaving() {
    let mut rng = SimRng::seed_from(0xe003);
    for _ in 0..CASES {
        let cap = 1024;
        let mut buf = vec![0u8; cap];
        let mut tx = RingProducer::new(cap);
        let mut rx = RingConsumer::new(cap);
        let mut queued: VecDeque<Vec<u8>> = VecDeque::new();
        let drain_bias = rng.gen_f64();
        let pushes = 1 + rng.gen_range(299) as usize;
        for i in 0..pushes {
            let len = 1 + rng.gen_range(119) as usize;
            let payload: Vec<u8> = (0..len).map(|j| (i * 31 + j) as u8).collect();
            loop {
                if rng.gen_f64() < drain_bias {
                    if let Some(got) = rx.pop(&mut buf) {
                        assert_eq!(got, queued.pop_front().unwrap());
                        tx.update_credits(rx.consumed());
                    }
                }
                if tx.push(&mut buf, &payload).is_some() {
                    queued.push_back(payload.clone());
                    break;
                }
                let got = rx.pop(&mut buf).unwrap();
                assert_eq!(got, queued.pop_front().unwrap());
                tx.update_credits(rx.consumed());
            }
        }
        while let Some(got) = rx.pop(&mut buf) {
            assert_eq!(got, queued.pop_front().unwrap());
        }
        assert!(queued.is_empty());
    }
}

#[test]
fn pool_allocations_never_overlap() {
    let mut rng = SimRng::seed_from(0xe004);
    for _ in 0..CASES {
        let mut pool = SlabPool::new(1 << 22);
        let mut live: Vec<precursor_storage::pool::PoolRange> = Vec::new();
        let allocs = 1 + rng.gen_range(199) as usize;
        for _ in 0..allocs {
            let s = 1 + rng.gen_range(4999) as usize;
            if let Some(r) = pool.alloc(s) {
                for other in &live {
                    assert!(r.end() <= other.offset || other.end() <= r.offset);
                }
                live.push(r);
            }
            if rng.gen_bool(0.5) {
                if let Some(r) = live.pop() {
                    pool.free(r);
                }
            }
        }
    }
}
