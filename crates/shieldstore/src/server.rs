//! The ShieldStore server.
//!
//! State layout (after Kim et al., as summarized in the Precursor paper
//! §5.1–§5.4): encrypted key-value entries live in *untrusted* memory,
//! chained per hash bucket, each carrying a MAC; the enclave holds a
//! statically allocated array of bucket hashes plus a Merkle tree whose root
//! authenticates everything. All request processing — transport decryption,
//! entry en/decryption, MAC and tree maintenance — happens inside the
//! enclave (the server-encryption scheme).

use precursor_crypto::keys::{Key128, Tag};
use precursor_crypto::{cmac, gcm, sha256};
use precursor_obs::MetricsRegistry;
use precursor_rdma::tcp::SimTcp;
use precursor_sgx::attest::AttestationService;
use precursor_sgx::enclave::{Enclave, RegionId};
use precursor_sim::meter::{Meter, Stage};
use precursor_sim::rng::SimRng;
use precursor_sim::time::Cycles;
use precursor_sim::CostModel;

use crate::merkle::MerkleTree;
use crate::wire::{
    decode_request, encode_reply, frame_sealed, unframe_sealed, ShieldOp, ShieldStatus,
};

/// ShieldStore configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShieldConfig {
    /// Functional hash-bucket count (power of two). The *modelled* enclave
    /// allocation is controlled separately by `modeled_*` below, so tests
    /// can run with a small functional table while the EPC numbers match
    /// the published ShieldStore footprint.
    pub num_buckets: usize,
    /// Modelled statically-allocated in-enclave bytes for the MAC/hash
    /// arrays (paper Table 1: ≈67.9 MiB at startup).
    pub modeled_static_bytes: u64,
    /// Modelled per-connection enclave scratch bytes, touched on first use
    /// (Table 1's 0→1-key jump of ≈194 pages).
    pub modeled_conn_bytes: u64,
    /// Modelled steady-state scratch touched under sustained load (Table 1's
    /// further +8 pages by 100 k keys).
    pub modeled_scratch_bytes: u64,
    /// Largest accepted key.
    pub max_key_bytes: usize,
    /// Largest accepted value.
    pub max_value_bytes: usize,
}

impl Default for ShieldConfig {
    fn default() -> ShieldConfig {
        ShieldConfig {
            num_buckets: 1 << 16,
            // 1008 pages of code/heap + 16384 pages of MAC array = 17392
            // pages — the paper's measured startup working set.
            modeled_static_bytes: (1008 + 16384) * 4096,
            modeled_conn_bytes: 194 * 4096,
            modeled_scratch_bytes: 8 * 4096,
            max_key_bytes: 256,
            max_value_bytes: 256 << 10,
        }
    }
}

/// Per-operation outcome + cost accounting (driver input).
#[derive(Debug, Clone)]
pub struct ShieldOpReport {
    /// Issuing client.
    pub client_id: u32,
    /// Operation kind.
    pub op: ShieldOp,
    /// Outcome.
    pub status: ShieldStatus,
    /// Plaintext value bytes involved.
    pub value_len: usize,
    /// Server-side cost charges.
    pub meter: Meter,
}

/// What a connecting client receives.
#[derive(Debug)]
pub struct ShieldClientBundle {
    /// Assigned client id.
    pub client_id: u32,
    /// Session key from the attestation handshake.
    pub session_key: Key128,
    /// Client end of the TCP connection.
    pub socket: SimTcp,
}

// An entry chained in an untrusted bucket.
#[derive(Debug, Clone)]
struct StoredEntry {
    key_hint: u64,   // hash for chain scanning (untrusted, non-secret)
    cipher: Vec<u8>, // GCM(key ‖ value) under the server storage key
    seq: u64,        // storage nonce counter
    mac: Tag,        // CMAC over cipher (feeds the bucket MAC)
}

#[derive(Debug)]
struct Session {
    session_key: Key128,
    socket: SimTcp, // server end
    expected_oid: u64,
    reply_seq: u64,
}

/// The ShieldStore server instance.
#[derive(Debug)]
pub struct ShieldServer {
    config: ShieldConfig,
    cost: CostModel,
    rng: SimRng,
    attestation: AttestationService,

    enclave: Enclave,
    static_region: RegionId,
    conn_region: RegionId,
    scratch_region: RegionId,
    conn_touched: bool,
    scratch_touched: bool,

    buckets: Vec<Vec<StoredEntry>>,
    tree: MerkleTree,
    storage_key: Key128,
    mac_key: Key128,
    storage_seq: u64,
    len: usize,

    sessions: Vec<Session>,
    reports: Vec<ShieldOpReport>,
    // Per-op metric taps (same backend-neutral namespace as the Precursor
    // server, so cross-backend metrics are directly comparable).
    obs: MetricsRegistry,
}

fn fx_hash(key: &[u8]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = precursor_storage_hash::FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

// A local copy of the FxHash mixer so this crate does not depend on
// precursor-storage for one function.
mod precursor_storage_hash {
    #[derive(Debug, Clone, Default)]
    pub struct FxHasher {
        state: u64,
    }
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    impl std::hash::Hasher for FxHasher {
        fn finish(&self) -> u64 {
            let mut z = self.state;
            z ^= z >> 32;
            z = z.wrapping_mul(0xd6e8_feb8_6659_fd93);
            z ^= z >> 32;
            z
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.state = (self.state.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
            }
        }
    }
}

impl ShieldServer {
    /// Creates a server; the enclave's static structures are touched at
    /// startup (the paper's 17,392-page initial working set, Table 1).
    pub fn new(config: ShieldConfig, cost: &CostModel) -> ShieldServer {
        assert!(
            config.num_buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        let mut rng = SimRng::seed_from(0xdead_beef_cafe_f00d);
        let attestation = AttestationService::new(&mut rng);
        let mut enclave = Enclave::new(cost);
        let static_region = enclave.alloc_region("shield-static", config.modeled_static_bytes);
        let conn_region = enclave.alloc_region("shield-conn", config.modeled_conn_bytes);
        let scratch_region = enclave.alloc_region("shield-scratch", config.modeled_scratch_bytes);
        let mut init_meter = Meter::new();
        enclave.touch_all(static_region, &mut init_meter, cost);

        ShieldServer {
            tree: MerkleTree::new(config.num_buckets),
            buckets: vec![Vec::new(); config.num_buckets],
            storage_key: Key128::generate(&mut rng),
            mac_key: Key128::generate(&mut rng),
            storage_seq: 0,
            len: 0,
            config,
            cost: cost.clone(),
            rng,
            attestation,
            enclave,
            static_region,
            conn_region,
            scratch_region,
            conn_touched: false,
            scratch_touched: false,
            sessions: Vec::new(),
            reports: Vec::new(),
            obs: MetricsRegistry::default(),
        }
    }

    /// The server-side metrics registry, fed on every finished op with the
    /// same backend-neutral namespace the Precursor server uses.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// sgx-perf style report (Table 1).
    pub fn sgx_report(&self) -> precursor_sgx::SgxPerfReport {
        self.enclave.report()
    }

    /// Admits a client over the modelled attestation handshake.
    pub fn add_client(&mut self, client_nonce: [u8; 16]) -> ShieldClientBundle {
        let client_id = self.sessions.len() as u32;
        let mut enclave_nonce = [0u8; 16];
        self.rng.fill_bytes(&mut enclave_nonce);
        let session_key = self
            .attestation
            .establish_session(
                &self.enclave,
                self.enclave.measurement(),
                client_nonce,
                enclave_nonce,
            )
            .expect("same-platform attestation succeeds");
        let (client_sock, server_sock) = SimTcp::pair();
        self.sessions.push(Session {
            session_key: session_key.clone(),
            socket: server_sock,
            expected_oid: 1,
            reply_seq: 1,
        });
        ShieldClientBundle {
            client_id,
            session_key,
            socket: client_sock,
        }
    }

    /// One sweep over all connections: drain, process, reply. Returns the
    /// number of requests processed.
    pub fn poll(&mut self) -> usize {
        let mut processed = 0;
        for idx in 0..self.sessions.len() {
            while let Some(msg) = self.sessions[idx].socket.recv() {
                self.process(idx, msg);
                processed += 1;
            }
        }
        processed
    }

    /// Takes accumulated per-op reports.
    pub fn take_reports(&mut self) -> Vec<ShieldOpReport> {
        std::mem::take(&mut self.reports)
    }

    fn process(&mut self, idx: usize, msg: Vec<u8>) {
        let mut meter = Meter::new();
        let cost = self.cost.clone();
        meter.counters_mut().tcp_msgs += 1;
        // Kernel/TCP stack CPU cost for receiving the message: consumes
        // server-thread occupancy, but the paper's latency breakdown books
        // kernel time under "networking" (it overlaps the tcp_msg_latency
        // already charged on the network path), so it goes off the
        // request-visible critical path.
        meter.charge(
            Stage::ServerOverhead,
            cost.server_time(Cycles(
                cost.tcp_msg_cycles + (msg.len() as f64 * cost.tcp_per_byte) as u64,
            )),
        );

        // Whole request is copied into the enclave and transport-decrypted.
        self.enclave
            .copy_across_boundary(msg.len(), &mut meter, &cost);
        meter.charge(Stage::Enclave, cost.server_time(cost.aes_gcm(msg.len())));
        if !self.conn_touched {
            self.conn_touched = true;
            self.enclave.touch_all(self.conn_region, &mut meter, &cost);
        }

        let session_key = self.sessions[idx].session_key.clone();
        let (op, status, value_len, reply_plain) = match unframe_sealed(&msg)
            .and_then(|(iv, sealed)| gcm::open(&session_key, &iv, &[], sealed).ok())
        {
            None => (ShieldOp::Get, ShieldStatus::Error, 0, Vec::new()),
            Some(plain) => match decode_request(&plain) {
                None => (ShieldOp::Get, ShieldStatus::Error, 0, Vec::new()),
                Some((op, oid, key, value)) => {
                    if oid != self.sessions[idx].expected_oid {
                        (op, ShieldStatus::Error, 0, Vec::new())
                    } else if key.len() > self.config.max_key_bytes
                        || value.len() > self.config.max_value_bytes
                    {
                        self.sessions[idx].expected_oid += 1;
                        (op, ShieldStatus::Error, 0, Vec::new())
                    } else {
                        self.sessions[idx].expected_oid += 1;
                        let key = key.to_vec();
                        let value = value.to_vec();
                        match op {
                            ShieldOp::Put => {
                                let st = self.do_put(&key, &value, &mut meter);
                                (op, st, value.len(), Vec::new())
                            }
                            ShieldOp::Get => match self.do_get(&key, &mut meter) {
                                Some(v) => {
                                    let len = v.len();
                                    (op, ShieldStatus::Ok, len, v)
                                }
                                None => (op, ShieldStatus::NotFound, 0, Vec::new()),
                            },
                            ShieldOp::Delete => {
                                let st = self.do_delete(&key, &mut meter);
                                (op, st, 0, Vec::new())
                            }
                        }
                    }
                }
            },
        };

        if self.len >= 10_000 && !self.scratch_touched {
            self.scratch_touched = true;
            self.enclave
                .touch_all(self.scratch_region, &mut meter, &cost);
        }

        // Fixed per-op occupancy (fitted to Fig. 4's ≈120 Kops; DESIGN.md §4).
        let mut fixed_cycles = self.cost.shieldstore_op_fixed;
        if op == ShieldOp::Put {
            fixed_cycles += self.cost.shieldstore_put_extra;
        }
        let fixed = Cycles(fixed_cycles);
        let critical =
            Cycles((fixed.0 as f64 * self.cost.shieldstore_critical_fraction).round() as u64);
        meter.charge(Stage::ServerCritical, self.cost.server_time(critical));
        meter.charge(
            Stage::ServerOverhead,
            self.cost.server_time(Cycles(fixed.0 - critical.0)),
        );

        // Seal + send the reply (transport encryption of status ‖ value).
        let session = &mut self.sessions[idx];
        let seq = session.reply_seq;
        session.reply_seq += 1;
        let mut ivb = [0u8; 12];
        ivb[0] = 0x02;
        ivb[4..].copy_from_slice(&seq.to_be_bytes());
        let iv = precursor_crypto::Nonce12::from_bytes(ivb);
        let plain = encode_reply(status, &reply_plain);
        meter.charge(
            Stage::Enclave,
            self.cost.server_time(self.cost.aes_gcm(plain.len())),
        );
        self.enclave
            .copy_across_boundary(plain.len(), &mut meter, &self.cost);
        let sealed = gcm::seal(&session.session_key, &iv, &[], &plain);
        let framed = frame_sealed(&iv, &sealed);
        meter.counters_mut().tcp_msgs += 1;
        meter.counters_mut().tx_bytes += framed.len() as u64;
        meter.charge(
            Stage::ServerOverhead,
            self.cost.server_time(Cycles(
                self.cost.tcp_msg_cycles + (framed.len() as f64 * self.cost.tcp_per_byte) as u64,
            )),
        );
        session.socket.send(&framed);

        // Metric tap: every finished op passes here, mirroring the
        // Precursor server's push_report choke point.
        self.obs.inc(
            match op {
                ShieldOp::Put => "ops.put",
                ShieldOp::Get => "ops.get",
                ShieldOp::Delete => "ops.delete",
            },
            1,
        );
        self.obs.inc(
            match status {
                ShieldStatus::Ok => "status.ok",
                ShieldStatus::NotFound => "status.not_found",
                ShieldStatus::Error => "status.error",
            },
            1,
        );
        precursor_obs::observe_meter(&mut self.obs, &meter);

        self.reports.push(ShieldOpReport {
            client_id: idx as u32,
            op,
            status,
            value_len,
            meter,
        });
    }

    fn bucket_index(&self, key: &[u8]) -> usize {
        (fx_hash(key) as usize) & (self.config.num_buckets - 1)
    }

    fn seal_entry(&mut self, key: &[u8], value: &[u8], meter: &mut Meter) -> StoredEntry {
        let cost = self.cost.clone();
        self.storage_seq += 1;
        let seq = self.storage_seq;
        let mut plain = Vec::with_capacity(2 + key.len() + value.len());
        plain.extend_from_slice(&(key.len() as u16).to_le_bytes());
        plain.extend_from_slice(key);
        plain.extend_from_slice(value);
        meter.charge(Stage::Enclave, cost.server_time(cost.aes_gcm(plain.len())));
        let cipher = gcm::seal(
            &self.storage_key,
            &precursor_crypto::Nonce12::from_counter(seq),
            &[],
            &plain,
        );
        meter.charge(Stage::Enclave, cost.server_time(cost.cmac(cipher.len())));
        let mac = cmac::mac(&self.mac_key, &cipher);
        // Entry leaves the enclave into the untrusted chain.
        self.enclave
            .copy_across_boundary(cipher.len(), meter, &cost);
        StoredEntry {
            key_hint: fx_hash(key),
            cipher,
            seq,
            mac,
        }
    }

    fn open_entry(&self, entry: &StoredEntry) -> Option<(Vec<u8>, Vec<u8>)> {
        let plain = gcm::open(
            &self.storage_key,
            &precursor_crypto::Nonce12::from_counter(entry.seq),
            &[],
            &entry.cipher,
        )
        .ok()?;
        if plain.len() < 2 {
            return None;
        }
        let key_len = u16::from_le_bytes(plain[..2].try_into().ok()?) as usize;
        if plain.len() < 2 + key_len {
            return None;
        }
        Some((
            plain[2..2 + key_len].to_vec(),
            plain[2 + key_len..].to_vec(),
        ))
    }

    // Recompute the bucket MAC (CMAC over the chain's entry MACs), hash it
    // into the leaf, and update the Merkle path — the per-put tree
    // maintenance the paper describes (§5.2).
    fn refresh_bucket(&mut self, b: usize, meter: &mut Meter) {
        let cost = self.cost.clone();
        let mut macs = Vec::with_capacity(self.buckets[b].len() * 16);
        for e in &self.buckets[b] {
            macs.extend_from_slice(e.mac.as_bytes());
        }
        meter.charge(Stage::Enclave, cost.server_time(cost.cmac(macs.len())));
        let bucket_mac = cmac::mac(&self.mac_key, &macs);
        meter.charge(Stage::Enclave, cost.server_time(cost.sha256(16)));
        let leaf = sha256::digest(bucket_mac.as_bytes());
        let hashes = self.tree.update(b, leaf);
        meter.charge(
            Stage::Enclave,
            cost.server_time(Cycles(cost.sha256(64).0 * hashes as u64)),
        );
        // Touch the bucket's hash slot in the static region.
        self.enclave.touch(
            self.static_region,
            (b as u64 * 16) % self.config.modeled_static_bytes,
            16,
            meter,
            &cost,
        );
    }

    // Verify a bucket, charging the MAC-list recomputation and one hash.
    // ShieldStore keeps the entire bucket-hash level *inside* the enclave
    // (that is what its ≈68 MiB static allocation holds), so a get compares
    // the recomputed bucket hash against the in-enclave copy directly — no
    // path walk; only puts maintain the tree (§5.2: "it reads the bucket
    // MAC lists, recomputes a hash over it, then compares it with the root
    // tree").
    fn verify_bucket(&mut self, b: usize, meter: &mut Meter) -> bool {
        let cost = self.cost.clone();
        let mut macs = Vec::with_capacity(self.buckets[b].len() * 16);
        for e in &self.buckets[b] {
            macs.extend_from_slice(e.mac.as_bytes());
        }
        meter.charge(Stage::Enclave, cost.server_time(cost.cmac(macs.len())));
        let bucket_mac = cmac::mac(&self.mac_key, &macs);
        let leaf = sha256::digest(bucket_mac.as_bytes());
        meter.charge(Stage::Enclave, cost.server_time(cost.sha256(16)));
        self.tree.leaf(b) == leaf
    }

    fn do_put(&mut self, key: &[u8], value: &[u8], meter: &mut Meter) -> ShieldStatus {
        let cost = self.cost.clone();
        let b = self.bucket_index(key);
        let hint = fx_hash(key);
        // Scan the chain for an existing key: each candidate entry must be
        // decrypted to compare keys (charged per entry).
        let mut found = None;
        for (i, e) in self.buckets[b].iter().enumerate() {
            if e.key_hint != hint {
                continue;
            }
            meter.charge(
                Stage::Enclave,
                cost.server_time(cost.aes_gcm(e.cipher.len())),
            );
            if let Some((k, _)) = self.open_entry(e) {
                if k == key {
                    found = Some(i);
                    break;
                }
            }
        }
        let entry = self.seal_entry(key, value, meter);
        match found {
            Some(i) => self.buckets[b][i] = entry,
            None => {
                self.buckets[b].push(entry);
                self.len += 1;
            }
        }
        self.refresh_bucket(b, meter);
        ShieldStatus::Ok
    }

    fn do_get(&mut self, key: &[u8], meter: &mut Meter) -> Option<Vec<u8>> {
        let cost = self.cost.clone();
        let b = self.bucket_index(key);
        if !self.verify_bucket(b, meter) {
            return None;
        }
        let hint = fx_hash(key);
        // "Decrypt all entries in a bucket, search for the corresponding
        // key": charge a key-portion decryption per chain entry, plus the
        // full value decryption for the match.
        let chain_len = self.buckets[b].len();
        meter.charge(
            Stage::Enclave,
            cost.server_time(Cycles(cost.aes_gcm(48).0 * chain_len as u64)),
        );
        let mut value = None;
        for e in &self.buckets[b] {
            if e.key_hint != hint {
                continue;
            }
            if let Some((k, v)) = self.open_entry(e) {
                if k == key {
                    meter.charge(Stage::Enclave, cost.server_time(cost.aes_gcm(v.len())));
                    value = Some(v);
                    break;
                }
            }
        }
        value
    }

    fn do_delete(&mut self, key: &[u8], meter: &mut Meter) -> ShieldStatus {
        let cost = self.cost.clone();
        let b = self.bucket_index(key);
        let hint = fx_hash(key);
        let mut idx = None;
        for (i, e) in self.buckets[b].iter().enumerate() {
            if e.key_hint != hint {
                continue;
            }
            meter.charge(
                Stage::Enclave,
                cost.server_time(cost.aes_gcm(e.cipher.len())),
            );
            if let Some((k, _)) = self.open_entry(e) {
                if k == key {
                    idx = Some(i);
                    break;
                }
            }
        }
        match idx {
            Some(i) => {
                self.buckets[b].remove(i);
                self.len -= 1;
                self.refresh_bucket(b, meter);
                ShieldStatus::Ok
            }
            None => ShieldStatus::NotFound,
        }
    }

    /// Tamper hook mirroring the Precursor server's: flips a bit in the
    /// untrusted stored ciphertext of `key`. Returns `false` if absent.
    pub fn corrupt_stored_entry(&mut self, key: &[u8]) -> bool {
        let b = self.bucket_index(key);
        let hint = fx_hash(key);
        let entries: Vec<usize> = self.buckets[b]
            .iter()
            .enumerate()
            .filter(|(_, e)| e.key_hint == hint)
            .map(|(i, _)| i)
            .collect();
        for i in entries {
            if let Some((k, _)) = self.open_entry(&self.buckets[b][i]) {
                if k == key {
                    self.buckets[b][i].cipher[0] ^= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Server-side integrity audit of a stored key (decryption under the
    /// storage key + chain MAC check). `None` if the key is absent.
    pub fn audit_key(&mut self, key: &[u8]) -> Option<bool> {
        let b = self.bucket_index(key);
        let hint = fx_hash(key);
        for e in &self.buckets[b] {
            if e.key_hint != hint {
                continue;
            }
            let mac_ok = cmac::verify(&self.mac_key, &e.cipher, &e.mac);
            match self.open_entry(e) {
                Some((k, _)) if k == key => return Some(mac_ok),
                Some(_) => continue,
                None => return Some(false), // undecryptable = tampered
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_working_set_matches_table_1() {
        let cost = CostModel::default();
        let server = ShieldServer::new(ShieldConfig::default(), &cost);
        assert_eq!(server.sgx_report().working_set_pages, 17392);
    }

    #[test]
    fn startup_is_oversubscribed_never() {
        // ShieldStore sizes its static structures to fit the EPC; the model
        // must agree (paper: "not affected by EPC paging").
        let cost = CostModel::default();
        let server = ShieldServer::new(ShieldConfig::default(), &cost);
        let r = server.sgx_report();
        assert!(r.working_set_pages <= r.epc_capacity_pages);
    }

    #[test]
    fn small_config_for_unit_tests() {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 64,
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut meter = Meter::new();
        assert_eq!(server.do_put(b"k", b"v", &mut meter), ShieldStatus::Ok);
        assert_eq!(server.do_get(b"k", &mut meter), Some(b"v".to_vec()));
        assert_eq!(server.do_get(b"missing", &mut meter), None);
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn put_overwrites_in_place() {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 64,
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut meter = Meter::new();
        server.do_put(b"k", b"v1", &mut meter);
        server.do_put(b"k", b"v2", &mut meter);
        assert_eq!(server.len(), 1);
        assert_eq!(server.do_get(b"k", &mut meter), Some(b"v2".to_vec()));
    }

    #[test]
    fn delete_updates_chain_and_tree() {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 4, // force chains
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut meter = Meter::new();
        for i in 0..32u32 {
            server.do_put(&i.to_le_bytes(), b"v", &mut meter);
        }
        assert_eq!(
            server.do_delete(&5u32.to_le_bytes(), &mut meter),
            ShieldStatus::Ok
        );
        assert_eq!(
            server.do_delete(&5u32.to_le_bytes(), &mut meter),
            ShieldStatus::NotFound
        );
        assert_eq!(server.do_get(&5u32.to_le_bytes(), &mut meter), None);
        assert_eq!(
            server.do_get(&6u32.to_le_bytes(), &mut meter),
            Some(b"v".to_vec())
        );
        assert_eq!(server.len(), 31);
    }

    #[test]
    fn tampered_entry_detected_by_audit() {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 64,
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut meter = Meter::new();
        server.do_put(b"k", b"value", &mut meter);
        assert_eq!(server.audit_key(b"k"), Some(true));
        assert!(server.corrupt_stored_entry(b"k"));
        assert_eq!(server.audit_key(b"k"), Some(false));
    }

    #[test]
    fn chained_buckets_hold_many_colliding_keys() {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 2,
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut meter = Meter::new();
        for i in 0..100u32 {
            server.do_put(&i.to_le_bytes(), &i.to_le_bytes(), &mut meter);
        }
        for i in 0..100u32 {
            assert_eq!(
                server.do_get(&i.to_le_bytes(), &mut meter),
                Some(i.to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn get_cost_grows_with_chain_length() {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 2,
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut meter = Meter::new();
        server.do_put(b"first", b"v", &mut meter);
        let mut short_meter = Meter::new();
        server.do_get(b"first", &mut short_meter);
        for i in 0..200u32 {
            server.do_put(&i.to_le_bytes(), b"v", &mut meter);
        }
        let mut long_meter = Meter::new();
        server.do_get(b"first", &mut long_meter);
        assert!(
            long_meter.get(Stage::Enclave) > short_meter.get(Stage::Enclave) * 2,
            "long chains must cost more: {} vs {}",
            short_meter.get(Stage::Enclave),
            long_meter.get(Stage::Enclave)
        );
    }
}
