//! The ShieldStore baseline (Kim et al., EuroSys '19), reimplemented over
//! the same simulated substrates as Precursor.
//!
//! ShieldStore is the paper's primary comparison system (§5.1): an
//! SGX-tailored key-value store that keeps encrypted key-value entries in
//! *untrusted* memory, chained into hash buckets, with per-entry MACs and an
//! **in-enclave Merkle tree over bucket MACs** for integrity. Clients and
//! the server interact through kernel TCP sockets. It represents the
//! *server-encryption scheme*: every request's full payload crosses into the
//! enclave, is decrypted and verified there, and values are re-encrypted
//! under a server key for storage.
//!
//! Per-operation work (all charged to the meter):
//!
//! * **put**: transport-decrypt the full request in the enclave, encrypt the
//!   entry under the server key, MAC it, update the untrusted chain, then
//!   recompute the bucket MAC over *all* entry MACs in the bucket and update
//!   the Merkle path to the root (§5.2).
//! * **get**: decrypt entries in the bucket to locate the key, verify the
//!   bucket MAC list against the tree, decrypt the value and re-encrypt it
//!   for transport (§5.2: "the system needs to decrypt all entries in a
//!   bucket, search for the corresponding key, then verify its integrity").
//!
//! The enclave working set is dominated by the statically allocated MAC/hash
//! structures — the paper measures ≈17,392 EPC pages at startup (Table 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod merkle;
pub mod server;
pub mod wire;

pub use backend::ShieldBackend;
pub use client::ShieldClient;
pub use merkle::MerkleTree;
pub use server::{ShieldConfig, ShieldOpReport, ShieldServer};
