//! The ShieldStore client: seals requests with the session key and sends
//! them over kernel TCP; the server does all further cryptographic work.

use std::collections::VecDeque;

use precursor_crypto::gcm;
use precursor_crypto::keys::{Key128, Nonce12};
use precursor_rdma::tcp::SimTcp;
use precursor_sim::meter::{Meter, Stage};
use precursor_sim::CostModel;

use crate::server::{ShieldClientBundle, ShieldServer};
use crate::wire::{
    decode_reply, encode_request, frame_sealed, unframe_sealed, ShieldOp, ShieldStatus,
};

/// A finished ShieldStore operation as observed by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShieldCompleted {
    /// The op's sequence number.
    pub oid: u64,
    /// Kind.
    pub op: ShieldOp,
    /// Server status.
    pub status: ShieldStatus,
    /// Value for successful gets.
    pub value: Option<Vec<u8>>,
}

/// A connected ShieldStore client.
#[derive(Debug)]
pub struct ShieldClient {
    client_id: u32,
    session_key: Key128,
    socket: SimTcp,
    cost: CostModel,
    oid: u64,
    reply_seq: u64,
    pending: VecDeque<(u64, ShieldOp)>,
    completed: Vec<ShieldCompleted>,
    meter: Meter,
}

impl ShieldClient {
    /// Connects to `server` (modelled attestation + TCP connect).
    pub fn connect(server: &mut ShieldServer, seed: u64) -> ShieldClient {
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&seed.to_le_bytes());
        let ShieldClientBundle {
            client_id,
            session_key,
            socket,
        } = server.add_client(nonce);
        ShieldClient {
            client_id,
            session_key,
            socket,
            cost: server.cost().clone(),
            oid: 0,
            reply_seq: 1,
            pending: VecDeque::new(),
            completed: Vec::new(),
            meter: Meter::new(),
        }
    }

    /// This client's id.
    pub fn client_id(&self) -> u32 {
        self.client_id
    }

    /// Takes the client-side cost meter.
    pub fn take_meter(&mut self) -> Meter {
        self.meter.take()
    }

    fn send(&mut self, op: ShieldOp, key: &[u8], value: &[u8]) -> u64 {
        self.oid += 1;
        let oid = self.oid;
        let plain = encode_request(op, oid, key, value);
        // Transport encryption of the *entire* request (server-encryption
        // scheme): charged at the client like any TLS-style sender.
        let t = self
            .cost
            .client_freq
            .cycles_to_nanos(self.cost.aes_gcm(plain.len()));
        self.meter.charge(Stage::ClientCpu, t);
        self.meter.counters_mut().crypto_bytes += plain.len() as u64;
        let mut ivb = [0u8; 12];
        ivb[0] = 0x01;
        ivb[4..].copy_from_slice(&oid.to_be_bytes());
        let iv = Nonce12::from_bytes(ivb);
        let sealed = gcm::seal(&self.session_key, &iv, &[], &plain);
        let framed = frame_sealed(&iv, &sealed);
        self.meter.counters_mut().tx_bytes += framed.len() as u64;
        self.socket.send(&framed);
        self.meter.counters_mut().tcp_msgs += 1;
        self.pending.push_back((oid, op));
        oid
    }

    /// Issues a put; returns its `oid`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> u64 {
        self.send(ShieldOp::Put, key, value)
    }

    /// Issues a get; returns its `oid`.
    pub fn get(&mut self, key: &[u8]) -> u64 {
        self.send(ShieldOp::Get, key, &[])
    }

    /// Issues a delete; returns its `oid`.
    pub fn delete(&mut self, key: &[u8]) -> u64 {
        self.send(ShieldOp::Delete, key, &[])
    }

    /// Drains replies from the socket (TCP preserves order, so replies match
    /// pending operations FIFO). Returns how many completed.
    pub fn poll_replies(&mut self) -> usize {
        let mut n = 0;
        while let Some(msg) = self.socket.recv() {
            let seq = self.reply_seq;
            self.reply_seq += 1;
            let t = self
                .cost
                .client_freq
                .cycles_to_nanos(self.cost.aes_gcm(msg.len()));
            self.meter.charge(Stage::ClientCpu, t);
            let Some((oid, op)) = self.pending.pop_front() else {
                break;
            };
            let mut expected_iv = [0u8; 12];
            expected_iv[0] = 0x02;
            expected_iv[4..].copy_from_slice(&seq.to_be_bytes());
            let result = unframe_sealed(&msg)
                .filter(|(iv, _)| iv.as_bytes() == &expected_iv)
                .and_then(|(iv, sealed)| gcm::open(&self.session_key, &iv, &[], sealed).ok())
                .and_then(|plain| decode_reply(&plain).map(|(s, v)| (s, v.to_vec())));
            let completed = match result {
                Some((status, value)) => ShieldCompleted {
                    oid,
                    op,
                    status,
                    value: if status == ShieldStatus::Ok && op == ShieldOp::Get {
                        Some(value)
                    } else {
                        None
                    },
                },
                None => ShieldCompleted {
                    oid,
                    op,
                    status: ShieldStatus::Error,
                    value: None,
                },
            };
            self.completed.push(completed);
            n += 1;
        }
        n
    }

    /// Takes all completed operations, oldest first.
    pub fn take_all_completed(&mut self) -> Vec<ShieldCompleted> {
        std::mem::take(&mut self.completed)
    }

    /// Convenience: put and wait by pumping the server.
    pub fn put_sync(
        &mut self,
        server: &mut ShieldServer,
        key: &[u8],
        value: &[u8],
    ) -> ShieldStatus {
        self.put(key, value);
        server.poll();
        self.poll_replies();
        self.completed
            .pop()
            .map(|c| c.status)
            .unwrap_or(ShieldStatus::Error)
    }

    /// Convenience: get and wait by pumping the server.
    pub fn get_sync(&mut self, server: &mut ShieldServer, key: &[u8]) -> Option<Vec<u8>> {
        self.get(key);
        server.poll();
        self.poll_replies();
        self.completed.pop().and_then(|c| c.value)
    }

    /// Convenience: delete and wait by pumping the server.
    pub fn delete_sync(&mut self, server: &mut ShieldServer, key: &[u8]) -> ShieldStatus {
        self.delete(key);
        server.poll();
        self.poll_replies();
        self.completed
            .pop()
            .map(|c| c.status)
            .unwrap_or(ShieldStatus::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ShieldConfig;
    use precursor_sim::CostModel;

    fn setup() -> (ShieldServer, ShieldClient) {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 1 << 10,
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let client = ShieldClient::connect(&mut server, 1);
        (server, client)
    }

    #[test]
    fn put_get_roundtrip_over_tcp() {
        let (mut server, mut client) = setup();
        assert_eq!(client.put_sync(&mut server, b"k", b"v"), ShieldStatus::Ok);
        assert_eq!(client.get_sync(&mut server, b"k").unwrap(), b"v");
    }

    #[test]
    fn missing_key_not_found() {
        let (mut server, mut client) = setup();
        assert!(client.get_sync(&mut server, b"nope").is_none());
    }

    #[test]
    fn delete_roundtrip() {
        let (mut server, mut client) = setup();
        client.put_sync(&mut server, b"k", b"v");
        assert_eq!(client.delete_sync(&mut server, b"k"), ShieldStatus::Ok);
        assert!(client.get_sync(&mut server, b"k").is_none());
        assert_eq!(
            client.delete_sync(&mut server, b"k"),
            ShieldStatus::NotFound
        );
    }

    #[test]
    fn pipelined_ops_complete_fifo() {
        let (mut server, mut client) = setup();
        for i in 0..10u32 {
            client.put(&i.to_le_bytes(), format!("v{i}").as_bytes());
        }
        server.poll();
        assert_eq!(client.poll_replies(), 10);
        let completed = client.take_all_completed();
        assert_eq!(completed.len(), 10);
        assert!(completed.iter().all(|c| c.status == ShieldStatus::Ok));

        for i in 0..10u32 {
            client.get(&i.to_le_bytes());
        }
        server.poll();
        client.poll_replies();
        let gets = client.take_all_completed();
        for (i, c) in gets.iter().enumerate() {
            assert_eq!(c.value.as_deref().unwrap(), format!("v{i}").as_bytes());
        }
    }

    #[test]
    fn multiple_clients_isolated_sessions() {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 1 << 10,
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut a = ShieldClient::connect(&mut server, 1);
        let mut b = ShieldClient::connect(&mut server, 2);
        a.put_sync(&mut server, b"ka", b"va");
        b.put_sync(&mut server, b"kb", b"vb");
        assert_eq!(a.get_sync(&mut server, b"kb").unwrap(), b"vb");
        assert_eq!(b.get_sync(&mut server, b"ka").unwrap(), b"va");
    }

    #[test]
    fn replayed_oid_rejected() {
        let (mut server, mut client) = setup();
        client.put_sync(&mut server, b"k", b"v");
        // craft a stale-oid request by resetting the client's counter
        client.oid = 0;
        client.put(b"k", b"evil");
        server.poll();
        client.poll_replies();
        let c = client.take_all_completed().pop().unwrap();
        assert_eq!(c.status, ShieldStatus::Error);
        // value unchanged; resync so the next op carries oid 2, which the
        // server still expects (the replay did not advance it)
        client.oid = 1;
        assert_eq!(client.get_sync(&mut server, b"k").unwrap(), b"v");
    }

    #[test]
    fn client_meter_counts_tcp_and_crypto() {
        let (mut server, mut client) = setup();
        client.put_sync(&mut server, b"k", &[0u8; 1024]);
        let m = client.take_meter();
        assert!(m.counters().tcp_msgs >= 1);
        assert!(m.get(Stage::ClientCpu) > precursor_sim::Nanos::ZERO);
    }
}
