//! Binary Merkle tree over bucket MACs.
//!
//! ShieldStore chains encrypted entries per bucket and keeps a MAC per
//! entry; the bucket MACs are hashed up a tree whose root lives in the
//! enclave. Updating a bucket costs one path of SHA-256 recomputations;
//! verifying a bucket costs the same path plus the comparison with the root.

use precursor_crypto::sha256;

/// A complete binary Merkle tree over `n` leaves (power of two), storing all
/// levels. Leaf values are 32-byte digests of whatever the caller hashes
/// (here: a bucket's MAC list).
///
/// # Example
///
/// ```
/// use precursor_shieldstore::merkle::MerkleTree;
/// let mut t = MerkleTree::new(8);
/// let root_before = t.root();
/// t.update(3, [7u8; 32]);
/// assert_ne!(t.root(), root_before);
/// assert!(t.verify(3, [7u8; 32]));
/// assert!(!t.verify(3, [8u8; 32]));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    // levels[0] = leaves, levels.last() = [root]
    levels: Vec<Vec<[u8; 32]>>,
}

fn parent_hash(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut buf = [0u8; 64];
    buf[..32].copy_from_slice(a);
    buf[32..].copy_from_slice(b);
    sha256::digest(&buf)
}

impl MerkleTree {
    /// Builds a tree of `leaves` zeroed leaves.
    ///
    /// # Panics
    ///
    /// Panics unless `leaves` is a power of two ≥ 2.
    pub fn new(leaves: usize) -> MerkleTree {
        assert!(
            leaves >= 2 && leaves.is_power_of_two(),
            "leaves must be a power of two"
        );
        let mut levels = vec![vec![[0u8; 32]; leaves]];
        while levels.last().expect("nonempty").len() > 1 {
            let below = levels.last().expect("nonempty");
            let mut level = Vec::with_capacity(below.len() / 2);
            for pair in below.chunks(2) {
                level.push(parent_hash(&pair[0], &pair[1]));
            }
            levels.push(level);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// Tree height (number of hash levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// The current root digest.
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().expect("nonempty")[0]
    }

    /// The current value of leaf `index` (ShieldStore keeps the whole leaf
    /// level inside the enclave, so a get compares against it directly).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn leaf(&self, index: usize) -> [u8; 32] {
        self.levels[0][index]
    }

    /// Replaces leaf `index` and recomputes the path to the root. Returns
    /// the number of hash computations performed (for cost accounting).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update(&mut self, index: usize, leaf: [u8; 32]) -> usize {
        self.levels[0][index] = leaf;
        let mut idx = index;
        let mut hashes = 0;
        for lvl in 0..self.height() {
            let pair = idx & !1;
            let h = parent_hash(&self.levels[lvl][pair], &self.levels[lvl][pair + 1]);
            idx /= 2;
            self.levels[lvl + 1][idx] = h;
            hashes += 1;
        }
        hashes
    }

    /// Verifies that leaf `index` currently holds `leaf` *and* that the path
    /// to the root is consistent (recomputing it), as the enclave does per
    /// get. Returns `false` on any mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn verify(&self, index: usize, leaf: [u8; 32]) -> bool {
        if self.levels[0][index] != leaf {
            return false;
        }
        let mut idx = index;
        let mut h = leaf;
        for lvl in 0..self.height() {
            let pair = idx & !1;
            let (a, b) = if idx.is_multiple_of(2) {
                (h, self.levels[lvl][pair + 1])
            } else {
                (self.levels[lvl][pair], h)
            };
            h = parent_hash(&a, &b);
            idx /= 2;
            if self.levels[lvl + 1][idx] != h {
                return false;
            }
        }
        h == self.root()
    }

    /// Bytes occupied by all tree nodes (for EPC modelling).
    pub fn node_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len() * 32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_is_consistent() {
        let t = MerkleTree::new(16);
        assert_eq!(t.leaves(), 16);
        assert_eq!(t.height(), 4);
        assert!(t.verify(0, [0u8; 32]));
        assert!(t.verify(15, [0u8; 32]));
    }

    #[test]
    fn update_changes_root_and_verifies() {
        let mut t = MerkleTree::new(8);
        let r0 = t.root();
        let hashes = t.update(5, [1u8; 32]);
        assert_eq!(hashes, 3);
        assert_ne!(t.root(), r0);
        assert!(t.verify(5, [1u8; 32]));
        assert!(t.verify(0, [0u8; 32]), "untouched leaves still verify");
    }

    #[test]
    fn updates_commute_to_same_root() {
        let mut a = MerkleTree::new(8);
        a.update(1, [1u8; 32]);
        a.update(6, [2u8; 32]);
        let mut b = MerkleTree::new(8);
        b.update(6, [2u8; 32]);
        b.update(1, [1u8; 32]);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn wrong_leaf_fails_verification() {
        let mut t = MerkleTree::new(4);
        t.update(2, [9u8; 32]);
        assert!(!t.verify(2, [8u8; 32]));
        assert!(!t.verify(1, [9u8; 32]));
    }

    #[test]
    fn tampered_internal_node_detected() {
        let mut t = MerkleTree::new(8);
        t.update(0, [5u8; 32]);
        // simulate memory corruption of an internal node
        t.levels[1][0][0] ^= 1;
        assert!(!t.verify(0, [5u8; 32]));
    }

    #[test]
    fn node_bytes_counts_all_levels() {
        let t = MerkleTree::new(8);
        // 8 + 4 + 2 + 1 = 15 nodes
        assert_eq!(t.node_bytes(), 15 * 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = MerkleTree::new(6);
    }
}
