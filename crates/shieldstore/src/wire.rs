//! ShieldStore's TCP message formats.
//!
//! Requests and replies are single messages over the kernel-TCP transport,
//! sealed end-to-end with the client's session key (the entire payload is
//! transport-encrypted — the server-encryption scheme of §2.4).

use precursor_crypto::keys::Nonce12;

/// Operations supported by the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShieldOp {
    /// Insert or update.
    Put = 1,
    /// Query.
    Get = 2,
    /// Remove.
    Delete = 3,
}

impl ShieldOp {
    /// Parses an opcode byte.
    pub fn from_u8(v: u8) -> Option<ShieldOp> {
        match v {
            1 => Some(ShieldOp::Put),
            2 => Some(ShieldOp::Get),
            3 => Some(ShieldOp::Delete),
            _ => None,
        }
    }
}

/// Reply status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShieldStatus {
    /// Success.
    Ok = 0,
    /// Key absent.
    NotFound = 1,
    /// Authentication or framing failure.
    Error = 2,
}

impl ShieldStatus {
    /// Parses a status byte.
    pub fn from_u8(v: u8) -> Option<ShieldStatus> {
        match v {
            0 => Some(ShieldStatus::Ok),
            1 => Some(ShieldStatus::NotFound),
            2 => Some(ShieldStatus::Error),
            _ => None,
        }
    }
}

/// Request plaintext: `op ‖ oid ‖ key_len ‖ key ‖ value`.
pub fn encode_request(op: ShieldOp, oid: u64, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(11 + key.len() + value.len());
    out.push(op as u8);
    out.extend_from_slice(&oid.to_le_bytes());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out
}

/// Parses a request plaintext. Returns `(op, oid, key, value)`.
pub fn decode_request(buf: &[u8]) -> Option<(ShieldOp, u64, &[u8], &[u8])> {
    if buf.len() < 11 {
        return None;
    }
    let op = ShieldOp::from_u8(buf[0])?;
    let oid = u64::from_le_bytes(buf[1..9].try_into().ok()?);
    let key_len = u16::from_le_bytes(buf[9..11].try_into().ok()?) as usize;
    if buf.len() < 11 + key_len {
        return None;
    }
    Some((op, oid, &buf[11..11 + key_len], &buf[11 + key_len..]))
}

/// Reply plaintext: `status ‖ value`.
pub fn encode_reply(status: ShieldStatus, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + value.len());
    out.push(status as u8);
    out.extend_from_slice(value);
    out
}

/// Parses a reply plaintext.
pub fn decode_reply(buf: &[u8]) -> Option<(ShieldStatus, &[u8])> {
    Some((ShieldStatus::from_u8(*buf.first()?)?, &buf[1..]))
}

/// Frames a sealed message with its clear IV: `iv ‖ sealed`.
pub fn frame_sealed(iv: &Nonce12, sealed: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + sealed.len());
    out.extend_from_slice(iv.as_bytes());
    out.extend_from_slice(sealed);
    out
}

/// Splits a framed message into IV and sealed bytes.
pub fn unframe_sealed(buf: &[u8]) -> Option<(Nonce12, &[u8])> {
    if buf.len() < 12 {
        return None;
    }
    let iv = Nonce12::try_from(&buf[..12]).ok()?;
    Some((iv, &buf[12..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let bytes = encode_request(ShieldOp::Put, 42, b"key", b"value bytes");
        let (op, oid, key, value) = decode_request(&bytes).unwrap();
        assert_eq!(op, ShieldOp::Put);
        assert_eq!(oid, 42);
        assert_eq!(key, b"key");
        assert_eq!(value, b"value bytes");
    }

    #[test]
    fn request_empty_value() {
        let bytes = encode_request(ShieldOp::Get, 1, b"k", b"");
        let (_, _, key, value) = decode_request(&bytes).unwrap();
        assert_eq!(key, b"k");
        assert!(value.is_empty());
    }

    #[test]
    fn malformed_requests_rejected() {
        assert!(decode_request(&[]).is_none());
        assert!(decode_request(&[9; 11]).is_none()); // bad opcode
        let mut short = encode_request(ShieldOp::Get, 1, b"long-key", b"");
        short.truncate(12); // key_len says 8 but fewer bytes remain
        assert!(decode_request(&short).is_none());
    }

    #[test]
    fn reply_roundtrip() {
        let bytes = encode_reply(ShieldStatus::Ok, b"v");
        assert_eq!(decode_reply(&bytes).unwrap(), (ShieldStatus::Ok, &b"v"[..]));
        assert!(decode_reply(&[77]).is_none());
        assert!(decode_reply(&[]).is_none());
    }

    #[test]
    fn sealed_framing_roundtrip() {
        let iv = Nonce12::from_counter(5);
        let framed = frame_sealed(&iv, b"ciphertext");
        let (iv2, sealed) = unframe_sealed(&framed).unwrap();
        assert_eq!(iv, iv2);
        assert_eq!(sealed, b"ciphertext");
        assert!(unframe_sealed(&[0; 5]).is_none());
    }
}
