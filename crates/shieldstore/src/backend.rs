//! [`TrustedKv`] implementation for the ShieldStore baseline.
//!
//! Adapts ShieldStore's native vocabulary ([`ShieldOp`], [`ShieldStatus`],
//! socket-based clients) to the backend-neutral surface the YCSB driver
//! and the cross-backend suites drive. ShieldStore has no trusted polling
//! shards, so every report carries `shard == 0`, and its kernel-TCP
//! transport is declared via [`Transport::Tcp`] so the discrete-event
//! replay applies message latency + scheduling jitter instead of the RNIC
//! QP-cache model.

use precursor::backend::{KvCompleted, KvOp, KvOpReport, KvStatus, Transport, TrustedKv};
use precursor::StoreError;
use precursor_obs::MetricsRegistry;
use precursor_sgx::SgxPerfReport;
use precursor_sim::meter::Meter;
use precursor_sim::CostModel;

use crate::client::ShieldClient;
use crate::server::{ShieldConfig, ShieldServer};
use crate::wire::{ShieldOp, ShieldStatus};

fn op_of(op: ShieldOp) -> KvOp {
    match op {
        ShieldOp::Put => KvOp::Put,
        ShieldOp::Get => KvOp::Get,
        ShieldOp::Delete => KvOp::Delete,
    }
}

fn status_of(s: ShieldStatus) -> KvStatus {
    match s {
        ShieldStatus::Ok => KvStatus::Ok,
        ShieldStatus::NotFound => KvStatus::NotFound,
        ShieldStatus::Error => KvStatus::Error,
    }
}

/// [`TrustedKv`] over a ShieldStore server and its socket clients.
pub struct ShieldBackend {
    server: ShieldServer,
    clients: Vec<ShieldClient>,
}

impl ShieldBackend {
    /// Builds the server with `config`; connect clients afterwards.
    pub fn new(config: ShieldConfig, cost: &CostModel) -> ShieldBackend {
        ShieldBackend {
            server: ShieldServer::new(config, cost),
            clients: Vec::new(),
        }
    }

    /// The underlying server (for assertions beyond the trait surface).
    pub fn server(&self) -> &ShieldServer {
        &self.server
    }

    /// Mutable access to the underlying server.
    pub fn server_mut(&mut self) -> &mut ShieldServer {
        &mut self.server
    }
}

impl TrustedKv for ShieldBackend {
    fn name(&self) -> &'static str {
        "ShieldStore"
    }

    fn transport(&self) -> Transport {
        Transport::Tcp
    }

    fn connect(&mut self, seed: u64) -> Result<usize, StoreError> {
        let client = ShieldClient::connect(&mut self.server, seed);
        self.clients.push(client);
        Ok(self.clients.len() - 1)
    }

    fn clients(&self) -> usize {
        self.clients.len()
    }

    fn submit(
        &mut self,
        client: usize,
        op: KvOp,
        key: &[u8],
        value: &[u8],
    ) -> Result<u64, StoreError> {
        let c = &mut self.clients[client];
        Ok(match op {
            KvOp::Put => c.put(key, value),
            KvOp::Get => c.get(key),
            KvOp::Delete => c.delete(key),
        })
    }

    fn poll(&mut self) -> usize {
        self.server.poll()
    }

    fn poll_replies(&mut self, client: usize) -> usize {
        self.clients[client].poll_replies()
    }

    fn take_completed(&mut self, client: usize) -> Vec<KvCompleted> {
        self.clients[client]
            .take_all_completed()
            .into_iter()
            .map(|c| KvCompleted {
                oid: c.oid,
                op: op_of(c.op),
                status: status_of(c.status),
                value: c.value,
            })
            .collect()
    }

    fn take_client_meter(&mut self, client: usize) -> Meter {
        self.clients[client].take_meter()
    }

    fn take_reports(&mut self) -> Vec<KvOpReport> {
        self.server
            .take_reports()
            .into_iter()
            .map(|r| KvOpReport {
                client_id: r.client_id,
                op: op_of(r.op),
                status: status_of(r.status),
                value_len: r.value_len,
                shard: 0,
                meter: r.meter,
            })
            .collect()
    }

    fn sgx_report(&self) -> SgxPerfReport {
        self.server.sgx_report()
    }

    fn store_len(&self) -> usize {
        self.server.len()
    }

    fn warmup_batch(&self, _frame_bytes: usize) -> usize {
        // Sockets are unbounded queues; 256 keeps per-sweep work modest
        // (matches the historical bulk-load cadence).
        256
    }

    fn metrics(&self) -> MetricsRegistry {
        self.server.metrics().clone()
    }
}
