//! Property tests of the ShieldStore baseline: full-stack random-operation
//! agreement with a `HashMap` model over the TCP transport, and Merkle-tree
//! consistency under random update sequences.

use std::collections::HashMap;

use proptest::prelude::*;

use precursor_shieldstore::merkle::MerkleTree;
use precursor_shieldstore::wire::ShieldStatus;
use precursor_shieldstore::{client::ShieldClient, server::ShieldConfig, ShieldServer};
use precursor_sim::CostModel;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..100))
            .prop_map(|(k, v)| Op::Put(k % 20, v)),
        any::<u8>().prop_map(|k| Op::Get(k % 20)),
        any::<u8>().prop_map(|k| Op::Delete(k % 20)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shieldstore_matches_hashmap_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 8, // force chains
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut client = ShieldClient::connect(&mut server, 5);
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    prop_assert_eq!(client.put_sync(&mut server, &[k], &v), ShieldStatus::Ok);
                    model.insert(k, v);
                }
                Op::Get(k) => {
                    let got = client.get_sync(&mut server, &[k]);
                    prop_assert_eq!(got.as_ref(), model.get(&k));
                }
                Op::Delete(k) => {
                    let status = client.delete_sync(&mut server, &[k]);
                    if model.remove(&k).is_some() {
                        prop_assert_eq!(status, ShieldStatus::Ok);
                    } else {
                        prop_assert_eq!(status, ShieldStatus::NotFound);
                    }
                }
            }
            prop_assert_eq!(server.len(), model.len());
        }
        // every surviving key audits clean
        for k in model.keys() {
            prop_assert_eq!(server.audit_key(&[*k]), Some(true));
        }
    }

    #[test]
    fn merkle_root_is_order_independent(
        updates in prop::collection::vec((0usize..64, any::<[u8; 32]>()), 1..50)
    ) {
        // applying the same final leaf assignment in any order yields the
        // same root
        let mut final_leaves: HashMap<usize, [u8; 32]> = HashMap::new();
        for (i, leaf) in &updates {
            final_leaves.insert(*i, *leaf);
        }
        let mut a = MerkleTree::new(64);
        for (i, leaf) in &updates {
            a.update(*i, *leaf);
        }
        let mut b = MerkleTree::new(64);
        let mut sorted: Vec<_> = final_leaves.iter().collect();
        sorted.sort_by_key(|(i, _)| **i);
        for (i, leaf) in sorted {
            b.update(*i, *leaf);
        }
        prop_assert_eq!(a.root(), b.root());
        for (i, leaf) in final_leaves {
            prop_assert!(a.verify(i, leaf));
        }
    }

    #[test]
    fn merkle_detects_any_single_leaf_substitution(
        seed_leaves in prop::collection::vec(any::<[u8; 32]>(), 8..16),
        victim_seed in any::<usize>(),
        forged in any::<[u8; 32]>(),
    ) {
        let mut t = MerkleTree::new(16);
        for (i, leaf) in seed_leaves.iter().enumerate() {
            t.update(i, *leaf);
        }
        let victim = victim_seed % seed_leaves.len();
        prop_assume!(forged != seed_leaves[victim]);
        prop_assert!(!t.verify(victim, forged));
        prop_assert!(t.verify(victim, seed_leaves[victim]));
    }
}
