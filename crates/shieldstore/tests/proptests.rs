//! Property tests of the ShieldStore baseline: full-stack random-operation
//! agreement with a `HashMap` model over the TCP transport, and Merkle-tree
//! consistency under random update sequences. Driven by seeded loops over
//! the in-repo deterministic RNG.

use std::collections::HashMap;

use precursor_shieldstore::merkle::MerkleTree;
use precursor_shieldstore::wire::ShieldStatus;
use precursor_shieldstore::{client::ShieldClient, server::ShieldConfig, ShieldServer};
use precursor_sim::rng::SimRng;
use precursor_sim::CostModel;

fn rand_leaf(rng: &mut SimRng) -> [u8; 32] {
    let mut b = [0u8; 32];
    rng.fill_bytes(&mut b);
    b
}

#[test]
fn shieldstore_matches_hashmap_model() {
    let mut rng = SimRng::seed_from(0xb001);
    for _ in 0..24 {
        let cost = CostModel::default();
        let config = ShieldConfig {
            num_buckets: 8, // force chains
            ..ShieldConfig::default()
        };
        let mut server = ShieldServer::new(config, &cost);
        let mut client = ShieldClient::connect(&mut server, 5);
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        let ops = 1 + rng.gen_range(59) as usize;
        for _ in 0..ops {
            let k = (rng.next_u32() as u8) % 20;
            match rng.gen_range(3) {
                0 => {
                    let mut v = vec![0u8; rng.gen_range(100) as usize];
                    rng.fill_bytes(&mut v);
                    assert_eq!(client.put_sync(&mut server, &[k], &v), ShieldStatus::Ok);
                    model.insert(k, v);
                }
                1 => {
                    let got = client.get_sync(&mut server, &[k]);
                    assert_eq!(got.as_ref(), model.get(&k));
                }
                _ => {
                    let status = client.delete_sync(&mut server, &[k]);
                    if model.remove(&k).is_some() {
                        assert_eq!(status, ShieldStatus::Ok);
                    } else {
                        assert_eq!(status, ShieldStatus::NotFound);
                    }
                }
            }
            assert_eq!(server.len(), model.len());
        }
        // every surviving key audits clean
        for k in model.keys() {
            assert_eq!(server.audit_key(&[*k]), Some(true));
        }
    }
}

#[test]
fn merkle_root_is_order_independent() {
    let mut rng = SimRng::seed_from(0xb002);
    for _ in 0..32 {
        // applying the same final leaf assignment in any order yields the
        // same root
        let n = 1 + rng.gen_range(49) as usize;
        let updates: Vec<(usize, [u8; 32])> = (0..n)
            .map(|_| (rng.gen_range(64) as usize, rand_leaf(&mut rng)))
            .collect();
        let mut final_leaves: HashMap<usize, [u8; 32]> = HashMap::new();
        for (i, leaf) in &updates {
            final_leaves.insert(*i, *leaf);
        }
        let mut a = MerkleTree::new(64);
        for (i, leaf) in &updates {
            a.update(*i, *leaf);
        }
        let mut b = MerkleTree::new(64);
        let mut sorted: Vec<_> = final_leaves.iter().collect();
        sorted.sort_by_key(|(i, _)| **i);
        for (i, leaf) in sorted {
            b.update(*i, *leaf);
        }
        assert_eq!(a.root(), b.root());
        for (i, leaf) in final_leaves {
            assert!(a.verify(i, leaf));
        }
    }
}

#[test]
fn merkle_detects_any_single_leaf_substitution() {
    let mut rng = SimRng::seed_from(0xb003);
    for _ in 0..32 {
        let n = 8 + rng.gen_range(8) as usize;
        let seed_leaves: Vec<[u8; 32]> = (0..n).map(|_| rand_leaf(&mut rng)).collect();
        let mut t = MerkleTree::new(16);
        for (i, leaf) in seed_leaves.iter().enumerate() {
            t.update(i, *leaf);
        }
        let victim = rng.gen_range(n as u64) as usize;
        let forged = rand_leaf(&mut rng);
        if forged == seed_leaves[victim] {
            continue;
        }
        assert!(!t.verify(victim, forged));
        assert!(t.verify(victim, seed_leaves[victim]));
    }
}
