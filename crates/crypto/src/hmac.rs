//! HMAC-SHA-256 (RFC 2104) and a small HKDF-style key derivation.
//!
//! Used by the attestation model (`precursor-sgx`) to bind quotes to
//! nonces and to derive per-client session keys from the attestation shared
//! secret.

use crate::sha256::{digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes HMAC-SHA-256 of `msg` under `key` (any key length).
///
/// # Example
///
/// ```
/// use precursor_crypto::hmac::hmac_sha256;
/// let a = hmac_sha256(b"key", b"msg");
/// let b = hmac_sha256(b"key", b"msg");
/// assert_eq!(a, b);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Derives `2 × 16` bytes of key material from a shared secret and context
/// labels — a two-step HKDF-expand specialization sufficient for the
/// attestation model.
pub fn derive_key_pair(secret: &[u8], info: &[u8]) -> ([u8; 16], [u8; 16]) {
    let prk = hmac_sha256(b"precursor-hkdf-salt", secret);
    let mut m1 = info.to_vec();
    m1.push(1);
    let okm1 = hmac_sha256(&prk, &m1);
    let mut m2 = okm1.to_vec();
    m2.extend_from_slice(info);
    m2.push(2);
    let okm2 = hmac_sha256(&prk, &m2);
    let mut k1 = [0u8; 16];
    let mut k2 = [0u8; 16];
    k1.copy_from_slice(&okm1[..16]);
    k2.copy_from_slice(&okm2[..16]);
    (k1, k2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2_jefe() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        let long_key = vec![0xAA; 100];
        let a = hmac_sha256(&long_key, b"m");
        let b = hmac_sha256(&digest(&long_key), b"m");
        assert_eq!(a, b);
    }

    #[test]
    fn key_and_message_sensitivity() {
        let base = hmac_sha256(b"k", b"m");
        assert_ne!(base, hmac_sha256(b"K", b"m"));
        assert_ne!(base, hmac_sha256(b"k", b"M"));
    }

    #[test]
    fn derive_key_pair_deterministic_and_distinct() {
        let (a1, a2) = derive_key_pair(b"shared-secret", b"client-7");
        let (b1, b2) = derive_key_pair(b"shared-secret", b"client-7");
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        assert_ne!(a1, a2);
        let (c1, _) = derive_key_pair(b"shared-secret", b"client-8");
        assert_ne!(a1, c1);
    }
}
