//! Salsa20 stream cipher (D. J. Bernstein's specification).
//!
//! This is the paper's client-side payload cipher: Libsodium's secretbox
//! construction encrypts with (X)Salsa20 under the 256-bit one-time
//! `K_operation` (§4). Encryption and decryption are the same keystream XOR.

use crate::keys::{Key256, Nonce8};

const SIGMA: [u32; 4] = [
    u32::from_le_bytes(*b"expa"),
    u32::from_le_bytes(*b"nd 3"),
    u32::from_le_bytes(*b"2-by"),
    u32::from_le_bytes(*b"te k"),
];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[b] ^= state[a].wrapping_add(state[d]).rotate_left(7);
    state[c] ^= state[b].wrapping_add(state[a]).rotate_left(9);
    state[d] ^= state[c].wrapping_add(state[b]).rotate_left(13);
    state[a] ^= state[d].wrapping_add(state[c]).rotate_left(18);
}

fn double_round(s: &mut [u32; 16]) {
    // column round
    quarter_round(s, 0, 4, 8, 12);
    quarter_round(s, 5, 9, 13, 1);
    quarter_round(s, 10, 14, 2, 6);
    quarter_round(s, 15, 3, 7, 11);
    // row round
    quarter_round(s, 0, 1, 2, 3);
    quarter_round(s, 5, 6, 7, 4);
    quarter_round(s, 10, 11, 8, 9);
    quarter_round(s, 15, 12, 13, 14);
}

fn keystream_block(key: &Key256, nonce: &Nonce8, counter: u64) -> [u8; 64] {
    let kb = key.as_bytes();
    let nb = nonce.as_bytes();
    let word = |bytes: &[u8], i: usize| {
        u32::from_le_bytes([
            bytes[4 * i],
            bytes[4 * i + 1],
            bytes[4 * i + 2],
            bytes[4 * i + 3],
        ])
    };
    let mut s = [0u32; 16];
    s[0] = SIGMA[0];
    for i in 0..4 {
        s[1 + i] = word(kb, i);
    }
    s[5] = SIGMA[1];
    s[6] = word(nb, 0);
    s[7] = word(nb, 1);
    s[8] = counter as u32;
    s[9] = (counter >> 32) as u32;
    s[10] = SIGMA[2];
    for i in 0..4 {
        s[11 + i] = word(kb, 4 + i);
    }
    s[15] = SIGMA[3];

    let input = s;
    for _ in 0..10 {
        double_round(&mut s);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = s[i].wrapping_add(input[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// XORs the Salsa20 keystream into `data` in place, starting at block
/// `counter_start`. Applying it twice with the same parameters restores the
/// original data.
///
/// # Example
///
/// ```
/// use precursor_crypto::salsa20::xor_keystream;
/// use precursor_crypto::keys::{Key256, Nonce8};
/// let key = Key256::from_bytes([1; 32]);
/// let nonce = Nonce8::from_bytes([2; 8]);
/// let mut data = *b"attack at dawn";
/// xor_keystream(&key, &nonce, 0, &mut data);
/// assert_ne!(&data, b"attack at dawn");
/// xor_keystream(&key, &nonce, 0, &mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
pub fn xor_keystream(key: &Key256, nonce: &Nonce8, counter_start: u64, data: &mut [u8]) {
    let mut counter = counter_start;
    for chunk in data.chunks_mut(64) {
        let ks = keystream_block(key, nonce, counter);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

/// Encrypts `plaintext` (allocating) — a convenience over [`xor_keystream`].
pub fn encrypt(key: &Key256, nonce: &Nonce8, plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    xor_keystream(key, nonce, 0, &mut out);
    out
}

/// Decrypts `ciphertext` (allocating). Identical to [`encrypt`].
pub fn decrypt(key: &Key256, nonce: &Nonce8, ciphertext: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_quarter_round_vector() {
        // From the Salsa20 specification: quarterround(1,0,0,0).
        let mut s = [0u32; 16];
        s[0] = 1;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0x08008145);
        assert_eq!(s[1], 0x00000080);
        assert_eq!(s[2], 0x00010200);
        assert_eq!(s[3], 0x20500000);
    }

    #[test]
    fn spec_quarter_round_zero_fixed_point() {
        let mut s = [0u32; 16];
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(&s[..4], &[0, 0, 0, 0]);
    }

    #[test]
    fn keystream_blocks_differ_by_counter() {
        let k = Key256::from_bytes([3; 32]);
        let n = Nonce8::from_bytes([4; 8]);
        assert_ne!(keystream_block(&k, &n, 0), keystream_block(&k, &n, 1));
    }

    #[test]
    fn keystream_differs_by_nonce_and_key() {
        let k = Key256::from_bytes([3; 32]);
        let n1 = Nonce8::from_bytes([4; 8]);
        let n2 = Nonce8::from_bytes([5; 8]);
        assert_ne!(keystream_block(&k, &n1, 0), keystream_block(&k, &n2, 0));
        let k2 = Key256::from_bytes([9; 32]);
        assert_ne!(keystream_block(&k, &n1, 0), keystream_block(&k2, &n1, 0));
    }

    #[test]
    fn roundtrip_all_lengths_around_block_boundary() {
        let k = Key256::from_bytes([7; 32]);
        let n = Nonce8::from_bytes([8; 8]);
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ct = encrypt(&k, &n, &pt);
            assert_eq!(decrypt(&k, &n, &ct), pt, "len {len}");
            if len > 0 {
                assert_ne!(ct, pt, "len {len}");
            }
        }
    }

    #[test]
    fn seek_with_counter_matches_contiguous_stream() {
        // Encrypting [0,128) in one call must equal encrypting the second
        // block separately with counter_start = 1.
        let k = Key256::from_bytes([1; 32]);
        let n = Nonce8::from_bytes([2; 8]);
        let mut whole = vec![0u8; 128];
        xor_keystream(&k, &n, 0, &mut whole);
        let mut second = vec![0u8; 64];
        xor_keystream(&k, &n, 1, &mut second);
        assert_eq!(&whole[64..], &second[..]);
    }

    #[test]
    fn deterministic() {
        let k = Key256::from_bytes([1; 32]);
        let n = Nonce8::from_bytes([2; 8]);
        assert_eq!(encrypt(&k, &n, b"abc"), encrypt(&k, &n, b"abc"));
    }
}
