//! AES-128 block cipher (FIPS 197).
//!
//! The S-box and its inverse are derived *algebraically* at compile time —
//! multiplicative inverse in GF(2⁸) followed by the affine transform — rather
//! than transcribed, which removes an entire class of table-typo bugs; the
//! FIPS 197 appendix vectors in the tests pin the result.
//!
//! The implementation is table-light and byte-oriented: clear, allocation
//! free, and fast enough for the simulation workloads (the *simulated* cost
//! of AES comes from the cost model, not from this code's wall-clock speed).

use crate::keys::Key128;

const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

const fn gf_mul(a: u8, b: u8) -> u8 {
    let mut p = 0u8;
    let mut aa = a;
    let mut bb = b;
    let mut i = 0;
    while i < 8 {
        if bb & 1 == 1 {
            p ^= aa;
        }
        aa = xtime(aa);
        bb >>= 1;
        i += 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8)
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn affine(b: u8) -> u8 {
    b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = affine(gf_inv(i as u8));
        i += 1;
    }
    t
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[sbox[i] as usize] = i as u8;
        i += 1;
    }
    t
}

/// The AES S-box, derived at compile time.
pub const SBOX: [u8; 256] = build_sbox();
/// The inverse AES S-box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// An expanded AES-128 key ready to encrypt or decrypt 16-byte blocks.
///
/// # Example
///
/// ```
/// use precursor_crypto::aes::Aes128;
/// use precursor_crypto::keys::Key128;
///
/// let cipher = Aes128::new(&Key128::from_bytes([0u8; 16]));
/// let block = [0u8; 16];
/// let ct = cipher.encrypt_block(block);
/// assert_eq!(cipher.decrypt_block(ct), block);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug.
        f.write_str("Aes128 { round_keys: <redacted> }")
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys (FIPS 197 §5.2).
    pub fn new(key: &Key128) -> Aes128 {
        let kb = key.as_bytes();
        let mut w = [[0u8; 4]; 44];
        for (i, word) in w.iter_mut().take(4).enumerate() {
            word.copy_from_slice(&kb[i * 4..i * 4 + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[round]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[10]);
        for round in (1..10).rev() {
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
            add_round_key(&mut s, &self.round_keys[round]);
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }
}

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State layout: s[r + 4c] is row r, column c (FIPS 197 §3.4).
fn shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[r + 4 * c] = orig[r + 4 * ((c + r) % 4)];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[r + 4 * ((c + r) % 4)] = orig[r + 4 * c];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        s[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gf_mul(col[0], 0x0e)
            ^ gf_mul(col[1], 0x0b)
            ^ gf_mul(col[2], 0x0d)
            ^ gf_mul(col[3], 0x09);
        s[4 * c + 1] = gf_mul(col[0], 0x09)
            ^ gf_mul(col[1], 0x0e)
            ^ gf_mul(col[2], 0x0b)
            ^ gf_mul(col[3], 0x0d);
        s[4 * c + 2] = gf_mul(col[0], 0x0d)
            ^ gf_mul(col[1], 0x09)
            ^ gf_mul(col[2], 0x0e)
            ^ gf_mul(col[3], 0x0b);
        s[4 * c + 3] = gf_mul(col[0], 0x0b)
            ^ gf_mul(col[1], 0x0d)
            ^ gf_mul(col[2], 0x09)
            ^ gf_mul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn sbox_known_entries() {
        // Spot values from the FIPS 197 table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn inv_sbox_inverts() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn sbox_is_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS 197 Appendix B worked example.
        let key = Key128::from_bytes(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let expected = hex16("3925841d02dc09fbdc118597196a0b32");
        let c = Aes128::new(&key);
        assert_eq!(c.encrypt_block(pt), expected);
        assert_eq!(c.decrypt_block(expected), pt);
    }

    #[test]
    fn fips197_appendix_c1() {
        // FIPS 197 Appendix C.1 (AES-128).
        let key = Key128::from_bytes(hex16("000102030405060708090a0b0c0d0e0f"));
        let pt = hex16("00112233445566778899aabbccddeeff");
        let expected = hex16("69c4e0d86a7b0430d8cdb78070b4c55a");
        let c = Aes128::new(&key);
        assert_eq!(c.encrypt_block(pt), expected);
        assert_eq!(c.decrypt_block(expected), pt);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_random() {
        let c = Aes128::new(&Key128::from_bytes([0xA5; 16]));
        let mut block = [0u8; 16];
        for round in 0..100u32 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = (round as u8).wrapping_mul(31).wrapping_add(i as u8);
            }
            assert_eq!(c.decrypt_block(c.encrypt_block(block)), block);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new(&Key128::from_bytes([0; 16]));
        let b = Aes128::new(&Key128::from_bytes([1; 16]));
        assert_ne!(a.encrypt_block([0; 16]), b.encrypt_block([0; 16]));
    }

    #[test]
    fn debug_redacts_keys() {
        let c = Aes128::new(&Key128::from_bytes([9; 16]));
        assert!(!format!("{c:?}").contains('9'));
    }
}
