//! Key, nonce and tag newtypes.
//!
//! Distinct newtypes keep the protocol code honest: a Salsa20 one-time key
//! (`K_operation`, 256 bit) can never be passed where an AES session key
//! (`K_session`, 128 bit) is expected, and nonces of the two ciphers are
//! likewise incompatible. `Debug` impls redact secret material.

use std::fmt;

use precursor_sim::rng::SimRng;

macro_rules! secret_bytes {
    ($(#[$doc:meta])* $name:ident, $len:expr) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, Hash)]
        pub struct $name([u8; $len]);

        impl $name {
            /// Wraps raw bytes.
            pub fn from_bytes(b: [u8; $len]) -> $name {
                $name(b)
            }

            /// Generates fresh random material from `rng`.
            pub fn generate(rng: &mut SimRng) -> $name {
                let mut b = [0u8; $len];
                rng.fill_bytes(&mut b);
                $name(b)
            }

            /// The raw bytes.
            pub fn as_bytes(&self) -> &[u8; $len] {
                &self.0
            }

            /// Length in bytes.
            pub const LEN: usize = $len;
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "(<{} secret bytes>)"), $len)
            }
        }

        impl TryFrom<&[u8]> for $name {
            type Error = crate::CryptoError;
            fn try_from(v: &[u8]) -> Result<Self, Self::Error> {
                let arr: [u8; $len] =
                    v.try_into().map_err(|_| crate::CryptoError::InvalidLength)?;
                Ok($name(arr))
            }
        }
    };
}

secret_bytes!(
    /// A 128-bit AES key (the paper's `K_session` transport key).
    Key128,
    16
);

secret_bytes!(
    /// A 256-bit Salsa20 key (the paper's one-time `K_operation`).
    Key256,
    32
);

/// A 96-bit AES-GCM initialization vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nonce12([u8; 12]);

impl Nonce12 {
    /// Length in bytes.
    pub const LEN: usize = 12;

    /// Wraps raw bytes.
    pub fn from_bytes(b: [u8; 12]) -> Nonce12 {
        Nonce12(b)
    }

    /// Generates a fresh random IV.
    pub fn generate(rng: &mut SimRng) -> Nonce12 {
        let mut b = [0u8; 12];
        rng.fill_bytes(&mut b);
        Nonce12(b)
    }

    /// A counter-derived IV (for protocols that use sequence numbers as
    /// nonces; unique per key as long as the counter never repeats).
    pub fn from_counter(counter: u64) -> Nonce12 {
        let mut b = [0u8; 12];
        b[4..].copy_from_slice(&counter.to_be_bytes());
        Nonce12(b)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 12] {
        &self.0
    }
}

impl TryFrom<&[u8]> for Nonce12 {
    type Error = crate::CryptoError;
    fn try_from(v: &[u8]) -> Result<Self, Self::Error> {
        let arr: [u8; 12] = v
            .try_into()
            .map_err(|_| crate::CryptoError::InvalidLength)?;
        Ok(Nonce12(arr))
    }
}

/// A 64-bit Salsa20 nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Nonce8([u8; 8]);

impl Nonce8 {
    /// Length in bytes.
    pub const LEN: usize = 8;

    /// Wraps raw bytes.
    pub fn from_bytes(b: [u8; 8]) -> Nonce8 {
        Nonce8(b)
    }

    /// Generates a fresh random nonce.
    pub fn generate(rng: &mut SimRng) -> Nonce8 {
        let mut b = [0u8; 8];
        rng.fill_bytes(&mut b);
        Nonce8(b)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 8] {
        &self.0
    }
}

impl TryFrom<&[u8]> for Nonce8 {
    type Error = crate::CryptoError;
    fn try_from(v: &[u8]) -> Result<Self, Self::Error> {
        let arr: [u8; 8] = v
            .try_into()
            .map_err(|_| crate::CryptoError::InvalidLength)?;
        Ok(Nonce8(arr))
    }
}

/// A 128-bit authentication tag (GCM tag or CMAC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tag([u8; 16]);

impl Tag {
    /// Length in bytes.
    pub const LEN: usize = 16;

    /// Wraps raw bytes.
    pub fn from_bytes(b: [u8; 16]) -> Tag {
        Tag(b)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Compares against another tag without early exit.
    pub fn verify(&self, other: &Tag) -> bool {
        crate::ct::ct_eq(&self.0, &other.0)
    }
}

impl TryFrom<&[u8]> for Tag {
    type Error = crate::CryptoError;
    fn try_from(v: &[u8]) -> Result<Self, Self::Error> {
        let arr: [u8; 16] = v
            .try_into()
            .map_err(|_| crate::CryptoError::InvalidLength)?;
        Ok(Tag(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_redacts_secrets() {
        let k = Key256::from_bytes([0x42; 32]);
        let s = format!("{k:?}");
        assert!(s.contains("secret"));
        assert!(!s.contains("42"));
    }

    #[test]
    fn generate_is_seed_deterministic() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        assert_eq!(Key128::generate(&mut a), Key128::generate(&mut b));
    }

    #[test]
    fn generate_differs_between_calls() {
        let mut rng = SimRng::seed_from(2);
        assert_ne!(Key256::generate(&mut rng), Key256::generate(&mut rng));
    }

    #[test]
    fn try_from_checks_length() {
        assert!(Key128::try_from(&[0u8; 16][..]).is_ok());
        assert!(Key128::try_from(&[0u8; 15][..]).is_err());
        assert!(Tag::try_from(&[0u8; 17][..]).is_err());
        assert!(Nonce8::try_from(&[0u8; 8][..]).is_ok());
        assert!(Nonce12::try_from(&[0u8; 11][..]).is_err());
    }

    #[test]
    fn counter_nonces_are_unique() {
        assert_ne!(Nonce12::from_counter(1), Nonce12::from_counter(2));
    }

    #[test]
    fn tag_verify() {
        let a = Tag::from_bytes([7; 16]);
        let b = Tag::from_bytes([7; 16]);
        let mut c = [7; 16];
        c[15] ^= 1;
        assert!(a.verify(&b));
        assert!(!a.verify(&Tag::from_bytes(c)));
    }
}
