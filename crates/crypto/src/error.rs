//! Error type shared by all primitives in this crate.

use std::error::Error;
use std::fmt;

/// Errors returned by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// Authenticated decryption failed: the tag did not verify.
    InvalidTag,
    /// An input had an invalid length (e.g. ciphertext shorter than a tag).
    InvalidLength,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidTag => f.write_str("authentication tag mismatch"),
            CryptoError::InvalidLength => f.write_str("invalid input length"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CryptoError::InvalidTag.to_string(),
            "authentication tag mismatch"
        );
        assert_eq!(
            CryptoError::InvalidLength.to_string(),
            "invalid input length"
        );
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CryptoError>();
    }
}
