//! Cryptographic primitives for the Precursor reproduction.
//!
//! The Precursor paper's protocol is defined in terms of specific algorithms
//! (§4): AES-128-GCM for transport ("session") encryption, Salsa20 with a
//! 256-bit one-time key for payload encryption, and AES-128-CMAC
//! (`sgx_rijndael128_cmac_msg`) for payload MACs. The ShieldStore baseline
//! additionally hashes bucket MACs into a Merkle tree (SHA-256).
//!
//! No cryptography crate is available in this offline environment, so the
//! primitives are implemented here from their specifications and validated
//! against published test vectors:
//!
//! * AES-128 — FIPS 197 (S-box derived algebraically at compile time);
//! * AES-128-GCM — NIST SP 800-38D / GCM spec test cases 1–3;
//! * AES-CMAC — RFC 4493 examples 1–4;
//! * Salsa20 — Bernstein's specification (quarter-round vectors, expansion);
//! * SHA-256 — FIPS 180-4 ("abc", empty, two-block message);
//! * HMAC-SHA-256 — RFC 4231 test case 1.
//!
//! # Security note
//!
//! These implementations are **not constant-time** and are intended for the
//! simulation-based reproduction only — exactly as the paper itself excludes
//! side channels from its threat model (§2.3). Do not reuse them to protect
//! real data.
//!
//! # Example
//!
//! ```
//! use precursor_crypto::{gcm, keys::{Key128, Nonce12}};
//!
//! let key = Key128::from_bytes([7u8; 16]);
//! let nonce = Nonce12::from_bytes([1u8; 12]);
//! let sealed = gcm::seal(&key, &nonce, b"header", b"secret");
//! let opened = gcm::open(&key, &nonce, b"header", &sealed).unwrap();
//! assert_eq!(opened, b"secret");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod chain;
pub mod cmac;
pub mod ct;
pub mod error;
pub mod gcm;
pub mod hmac;
pub mod keys;
pub mod salsa20;
pub mod sha256;

pub use chain::MacChain;
pub use error::CryptoError;
pub use keys::{Key128, Key256, Nonce12, Nonce8, Tag};
