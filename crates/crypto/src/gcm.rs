//! AES-128-GCM authenticated encryption (NIST SP 800-38D).
//!
//! This is the paper's transport ("session") encryption: control data is
//! sealed under the per-client `K_session` with the request's AAD, giving
//! confidentiality, integrity and client authenticity in one pass (§3.4, §4).

use crate::aes::Aes128;
use crate::ct::ct_eq;
use crate::error::CryptoError;
use crate::keys::{Key128, Nonce12, Tag};

/// GCM tag length in bytes.
pub const TAG_LEN: usize = 16;

fn gf_mult(x: u128, y: u128) -> u128 {
    // Bit 0 is the most significant bit per the GCM spec.
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= 0xE1u128 << 120;
        }
    }
    z
}

fn block_to_u128(b: &[u8]) -> u128 {
    let mut arr = [0u8; 16];
    arr[..b.len()].copy_from_slice(b);
    u128::from_be_bytes(arr)
}

fn ghash(h: u128, aad: &[u8], ct: &[u8]) -> u128 {
    let mut y = 0u128;
    for chunk in aad.chunks(16) {
        y = gf_mult(y ^ block_to_u128(chunk), h);
    }
    for chunk in ct.chunks(16) {
        y = gf_mult(y ^ block_to_u128(chunk), h);
    }
    let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
    gf_mult(y ^ lens, h)
}

fn inc32(counter: &mut [u8; 16]) {
    let mut c = u32::from_be_bytes([counter[12], counter[13], counter[14], counter[15]]);
    c = c.wrapping_add(1);
    counter[12..].copy_from_slice(&c.to_be_bytes());
}

fn ctr_xor(cipher: &Aes128, j0: &[u8; 16], data: &mut [u8]) {
    let mut counter = *j0;
    for chunk in data.chunks_mut(16) {
        inc32(&mut counter);
        let ks = cipher.encrypt_block(counter);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

fn compute_tag(cipher: &Aes128, h: u128, j0: &[u8; 16], aad: &[u8], ct: &[u8]) -> Tag {
    let s = ghash(h, aad, ct);
    let ekj0 = block_to_u128(&cipher.encrypt_block(*j0));
    Tag::from_bytes((s ^ ekj0).to_be_bytes())
}

fn setup(key: &Key128, nonce: &Nonce12) -> (Aes128, u128, [u8; 16]) {
    let cipher = Aes128::new(key);
    let h = block_to_u128(&cipher.encrypt_block([0u8; 16]));
    let mut j0 = [0u8; 16];
    j0[..12].copy_from_slice(nonce.as_bytes());
    j0[15] = 1;
    (cipher, h, j0)
}

/// Encrypts `plaintext` and authenticates it together with `aad`.
///
/// Returns `ciphertext ‖ tag` (tag is the trailing [`TAG_LEN`] bytes).
///
/// # Example
///
/// ```
/// use precursor_crypto::gcm;
/// use precursor_crypto::keys::{Key128, Nonce12};
/// let key = Key128::from_bytes([0; 16]);
/// let nonce = Nonce12::from_bytes([0; 12]);
/// let sealed = gcm::seal(&key, &nonce, b"", b"hello");
/// assert_eq!(sealed.len(), 5 + gcm::TAG_LEN);
/// ```
pub fn seal(key: &Key128, nonce: &Nonce12, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let (cipher, h, j0) = setup(key, nonce);
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    out.extend_from_slice(plaintext);
    ctr_xor(&cipher, &j0, &mut out);
    let tag = compute_tag(&cipher, h, &j0, aad, &out);
    out.extend_from_slice(tag.as_bytes());
    out
}

/// Decrypts `sealed` (`ciphertext ‖ tag`) and verifies the tag over the
/// ciphertext and `aad`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if `sealed` is shorter than a tag
/// and [`CryptoError::InvalidTag`] if authentication fails (wrong key, wrong
/// nonce, tampered ciphertext or tampered AAD).
pub fn open(
    key: &Key128,
    nonce: &Nonce12,
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < TAG_LEN {
        return Err(CryptoError::InvalidLength);
    }
    let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let (cipher, h, j0) = setup(key, nonce);
    let expected = compute_tag(&cipher, h, &j0, aad, ct);
    if !ct_eq(expected.as_bytes(), tag) {
        return Err(CryptoError::InvalidTag);
    }
    let mut pt = ct.to_vec();
    ctr_xor(&cipher, &j0, &mut pt);
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h2b(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn key(s: &str) -> Key128 {
        Key128::try_from(h2b(s).as_slice()).unwrap()
    }

    fn nonce(s: &str) -> Nonce12 {
        Nonce12::try_from(h2b(s).as_slice()).unwrap()
    }

    #[test]
    fn nist_test_case_1_empty() {
        // GCM spec test case 1: zero key/IV, empty everything.
        let sealed = seal(
            &key("00000000000000000000000000000000"),
            &nonce("000000000000000000000000"),
            b"",
            b"",
        );
        assert_eq!(sealed, h2b("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    #[test]
    fn nist_test_case_2_one_block() {
        let k = key("00000000000000000000000000000000");
        let n = nonce("000000000000000000000000");
        let pt = h2b("00000000000000000000000000000000");
        let sealed = seal(&k, &n, b"", &pt);
        assert_eq!(
            sealed,
            h2b("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")
        );
        assert_eq!(open(&k, &n, b"", &sealed).unwrap(), pt);
    }

    #[test]
    fn nist_test_case_3_four_blocks() {
        let k = key("feffe9928665731c6d6a8f9467308308");
        let n = nonce("cafebabefacedbaddecaf888");
        let pt = h2b(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let sealed = seal(&k, &n, b"", &pt);
        let expected_ct = h2b(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        );
        assert_eq!(&sealed[..64], &expected_ct[..]);
        assert_eq!(&sealed[64..], &h2b("4d5c2af327cd64a62cf35abd2ba6fab4")[..]);
    }

    #[test]
    fn roundtrip_with_aad_various_lengths() {
        let k = Key128::from_bytes([9; 16]);
        for len in [0usize, 1, 15, 16, 17, 32, 100, 1000] {
            let n = Nonce12::from_counter(len as u64);
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let aad = b"control header";
            let sealed = seal(&k, &n, aad, &pt);
            assert_eq!(open(&k, &n, aad, &sealed).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = Key128::from_bytes([1; 16]);
        let n = Nonce12::from_counter(1);
        let mut sealed = seal(&k, &n, b"a", b"payload");
        sealed[0] ^= 1;
        assert_eq!(open(&k, &n, b"a", &sealed), Err(CryptoError::InvalidTag));
    }

    #[test]
    fn tampered_tag_rejected() {
        let k = Key128::from_bytes([1; 16]);
        let n = Nonce12::from_counter(1);
        let mut sealed = seal(&k, &n, b"", b"payload");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(open(&k, &n, b"", &sealed), Err(CryptoError::InvalidTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let k = Key128::from_bytes([1; 16]);
        let n = Nonce12::from_counter(1);
        let sealed = seal(&k, &n, b"aad-1", b"payload");
        assert_eq!(
            open(&k, &n, b"aad-2", &sealed),
            Err(CryptoError::InvalidTag)
        );
    }

    #[test]
    fn wrong_key_or_nonce_rejected() {
        let k = Key128::from_bytes([1; 16]);
        let n = Nonce12::from_counter(1);
        let sealed = seal(&k, &n, b"", b"payload");
        assert!(open(&Key128::from_bytes([2; 16]), &n, b"", &sealed).is_err());
        assert!(open(&k, &Nonce12::from_counter(2), b"", &sealed).is_err());
    }

    #[test]
    fn short_input_is_invalid_length() {
        let k = Key128::from_bytes([1; 16]);
        let n = Nonce12::from_counter(1);
        assert_eq!(
            open(&k, &n, b"", &[0u8; 15]),
            Err(CryptoError::InvalidLength)
        );
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let k = Key128::from_bytes([3; 16]);
        let a = seal(&k, &Nonce12::from_counter(1), b"", b"same plaintext");
        let b = seal(&k, &Nonce12::from_counter(2), b"", b"same plaintext");
        assert_ne!(a, b);
    }
}
