//! Chained MACs over an ordered message stream.
//!
//! A [`MacChain`] authenticates not just each message but its *position in
//! the stream*: every tag is an HMAC over the previous tag and the current
//! message, so a verifier holding the same key and starting state detects
//! any reordering, substitution or truncation of the sequence — the
//! mechanism Precursor's clients use to detect a Byzantine host splicing
//! stale control replies into a session (cf. Brandenburger et al.'s
//! lightweight collective memory, which hashes client operations into a
//! per-session chain for the same reason).
//!
//! The chain self-heals across *gaps*: when the verifier knows it missed
//! messages (a lost reply it timed out on), it may [`resync`](MacChain::resync)
//! to the received tag — the link itself is still authenticated by the
//! transport layer, only the connection to the missed prefix is skipped.
//!
//! # Example
//!
//! ```
//! use precursor_crypto::chain::MacChain;
//! use precursor_crypto::Key128;
//!
//! let key = Key128::from_bytes([7u8; 16]);
//! let mut sender = MacChain::new(&key, b"session-1");
//! let mut receiver = MacChain::new(&key, b"session-1");
//!
//! let t1 = sender.advance(b"reply one");
//! let t2 = sender.advance(b"reply two");
//! assert_eq!(receiver.advance(b"reply one"), t1);
//! assert_eq!(receiver.advance(b"reply two"), t2);
//! ```

use crate::hmac::hmac_sha256;
use crate::keys::{Key128, Tag};

/// A rolling MAC chain: `tag_i = HMAC(key, state_{i-1} ‖ msg_i)[..16]`,
/// `state_i = tag_i`. Both endpoints construct it from the shared key and a
/// context string (which should bind the session identity and epoch), then
/// advance it once per message in stream order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacChain {
    key: Key128,
    state: [u8; 16],
}

impl MacChain {
    /// Creates a chain keyed by `key`, with the starting state derived from
    /// `context` (bind the session id and epoch here so chains from
    /// different sessions or epochs never collide).
    pub fn new(key: &Key128, context: &[u8]) -> MacChain {
        let seed = hmac_sha256(key.as_bytes(), context);
        let mut state = [0u8; 16];
        state.copy_from_slice(&seed[..16]);
        MacChain {
            key: key.clone(),
            state,
        }
    }

    /// Absorbs the next message and returns its chained tag.
    pub fn advance(&mut self, msg: &[u8]) -> Tag {
        let mut input = Vec::with_capacity(16 + msg.len());
        input.extend_from_slice(&self.state);
        input.extend_from_slice(msg);
        let mac = hmac_sha256(self.key.as_bytes(), &input);
        self.state.copy_from_slice(&mac[..16]);
        Tag::from_bytes(self.state)
    }

    /// Adopts `tag` as the current state without verifying the link to the
    /// previous state — used by a verifier that *knows* it missed messages
    /// and wants to continue checking the suffix of the stream.
    pub fn resync(&mut self, tag: &Tag) {
        self.state.copy_from_slice(tag.as_bytes());
    }

    /// The current chain state (the last tag produced or resynced to).
    pub fn state(&self) -> [u8; 16] {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key128 {
        Key128::from_bytes([0x42; 16])
    }

    #[test]
    fn same_inputs_same_chain() {
        let mut a = MacChain::new(&key(), b"ctx");
        let mut b = MacChain::new(&key(), b"ctx");
        for i in 0..10u8 {
            assert_eq!(a.advance(&[i]), b.advance(&[i]));
        }
    }

    #[test]
    fn order_matters() {
        let mut a = MacChain::new(&key(), b"ctx");
        let mut b = MacChain::new(&key(), b"ctx");
        a.advance(b"x");
        a.advance(b"y");
        b.advance(b"y");
        b.advance(b"x");
        assert_ne!(a.state(), b.state());
    }

    #[test]
    fn context_separates_chains() {
        let mut a = MacChain::new(&key(), b"epoch-1");
        let mut b = MacChain::new(&key(), b"epoch-2");
        assert_ne!(a.advance(b"m"), b.advance(b"m"));
    }

    #[test]
    fn key_separates_chains() {
        let mut a = MacChain::new(&key(), b"ctx");
        let mut b = MacChain::new(&Key128::from_bytes([1; 16]), b"ctx");
        assert_ne!(a.advance(b"m"), b.advance(b"m"));
    }

    #[test]
    fn substitution_breaks_verification() {
        let mut sender = MacChain::new(&key(), b"ctx");
        let t1 = sender.advance(b"real reply");
        let mut verifier = MacChain::new(&key(), b"ctx");
        assert_ne!(verifier.advance(b"forged reply"), t1);
    }

    #[test]
    fn resync_recovers_after_gap() {
        let mut sender = MacChain::new(&key(), b"ctx");
        let _t1 = sender.advance(b"one");
        let t2 = sender.advance(b"two"); // receiver misses "one" and "two"
        let t3 = sender.advance(b"three");

        let mut receiver = MacChain::new(&key(), b"ctx");
        // without the missed prefix the tag cannot be reproduced ...
        assert_ne!(receiver.advance(b"three"), t3);
        // ... but resyncing to the last delivered tag re-joins the chain
        receiver.resync(&t2);
        assert_eq!(receiver.advance(b"three"), t3);
        assert_eq!(receiver.advance(b"four"), sender.advance(b"four"));
    }
}
