//! Timing-resistant comparison helper.
//!
//! [`ct_eq`] folds the XOR of every byte pair before comparing against zero,
//! so the comparison does not early-exit on the first mismatching byte. (The
//! rest of the crate is *not* constant-time — see the crate docs — but tag
//! comparison is the one place where a naive `==` would be an outright
//! protocol bug, so it gets the standard treatment.)

/// Compares two byte slices without early exit.
///
/// Returns `false` when lengths differ.
///
/// # Example
///
/// ```
/// use precursor_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[0xff; 32], &[0xff; 32]));
    }

    #[test]
    fn detects_single_bit_difference() {
        let a = [0u8; 16];
        for i in 0..16 {
            for bit in 0..8 {
                let mut b = a;
                b[i] ^= 1 << bit;
                assert!(!ct_eq(&a, &b), "missed flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn length_mismatch_is_unequal() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
        assert!(!ct_eq(&[], &[0]));
    }
}
