//! AES-128-CMAC (RFC 4493 / NIST SP 800-38B).
//!
//! The paper's clients MAC the Salsa20-encrypted payload with
//! `sgx_rijndael128_cmac_msg`, i.e. AES-128-CMAC, so integrity can be
//! verified by whoever holds the one-time key `K_operation` (§4).

use crate::aes::Aes128;
use crate::keys::{Key128, Tag};

fn dbl(block: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        let b = block[i];
        out[i] = (b << 1) | carry;
        carry = b >> 7;
    }
    if carry == 1 {
        out[15] ^= 0x87;
    }
    out
}

/// Computes the AES-128-CMAC of `msg` under `key`.
///
/// # Example
///
/// ```
/// use precursor_crypto::cmac::mac;
/// use precursor_crypto::keys::Key128;
/// let t1 = mac(&Key128::from_bytes([1; 16]), b"data");
/// let t2 = mac(&Key128::from_bytes([1; 16]), b"data");
/// assert_eq!(t1, t2);
/// ```
pub fn mac(key: &Key128, msg: &[u8]) -> Tag {
    let cipher = Aes128::new(key);
    let k1 = dbl(cipher.encrypt_block([0u8; 16]));
    let k2 = dbl(k1);

    let n_blocks = msg.len().div_ceil(16).max(1);
    let mut x = [0u8; 16];
    for i in 0..n_blocks - 1 {
        let mut block = [0u8; 16];
        block.copy_from_slice(&msg[i * 16..i * 16 + 16]);
        for j in 0..16 {
            x[j] ^= block[j];
        }
        x = cipher.encrypt_block(x);
    }

    // Last block: XOR with K1 when complete, pad + K2 otherwise.
    let rest = &msg[(n_blocks - 1) * 16..];
    let mut last = [0u8; 16];
    if rest.len() == 16 {
        last.copy_from_slice(rest);
        for j in 0..16 {
            last[j] ^= k1[j];
        }
    } else {
        last[..rest.len()].copy_from_slice(rest);
        last[rest.len()] = 0x80;
        for j in 0..16 {
            last[j] ^= k2[j];
        }
    }
    for j in 0..16 {
        x[j] ^= last[j];
    }
    Tag::from_bytes(cipher.encrypt_block(x))
}

/// Verifies a CMAC tag (no early exit in the comparison).
pub fn verify(key: &Key128, msg: &[u8], tag: &Tag) -> bool {
    mac(key, msg).verify(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h2b(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> Key128 {
        Key128::try_from(h2b("2b7e151628aed2a6abf7158809cf4f3c").as_slice()).unwrap()
    }

    fn rfc_msg() -> Vec<u8> {
        h2b("6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710")
    }

    #[test]
    fn rfc4493_example_1_empty() {
        assert_eq!(
            mac(&rfc_key(), b"").as_bytes().to_vec(),
            h2b("bb1d6929e95937287fa37d129b756746")
        );
    }

    #[test]
    fn rfc4493_example_2_16_bytes() {
        assert_eq!(
            mac(&rfc_key(), &rfc_msg()[..16]).as_bytes().to_vec(),
            h2b("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        assert_eq!(
            mac(&rfc_key(), &rfc_msg()[..40]).as_bytes().to_vec(),
            h2b("dfa66747de9ae63030ca32611497c827")
        );
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        assert_eq!(
            mac(&rfc_key(), &rfc_msg()).as_bytes().to_vec(),
            h2b("51f0bebf7e3b9d92fc49741779363cfe")
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = Key128::from_bytes([5; 16]);
        let tag = mac(&key, b"payload bytes");
        assert!(verify(&key, b"payload bytes", &tag));
        assert!(!verify(&key, b"payload bytez", &tag));
        assert!(!verify(
            &Key128::from_bytes([6; 16]),
            b"payload bytes",
            &tag
        ));
    }

    #[test]
    fn length_extension_like_inputs_differ() {
        let key = Key128::from_bytes([5; 16]);
        // messages around the block boundary must all have distinct tags
        let mut tags = std::collections::HashSet::new();
        for len in 0..48usize {
            let msg = vec![0xAB; len];
            assert!(
                tags.insert(mac(&key, &msg).as_bytes().to_vec()),
                "len {len}"
            );
        }
    }

    #[test]
    fn dbl_shifts_and_reduces() {
        // doubling a block with MSB clear is a plain shift
        let mut b = [0u8; 16];
        b[15] = 0x01;
        assert_eq!(dbl(b)[15], 0x02);
        // MSB set triggers the 0x87 reduction
        let mut c = [0u8; 16];
        c[0] = 0x80;
        let d = dbl(c);
        assert_eq!(d[15], 0x87);
        assert_eq!(d[0], 0x00);
    }
}
