//! Property-based tests over the crypto primitives, driven by the in-repo
//! deterministic RNG (seeded loops instead of an external proptest engine).

use precursor_crypto::keys::{Key128, Key256, Nonce12, Nonce8, Tag};
use precursor_crypto::{aes::Aes128, cmac, ct::ct_eq, gcm, hmac::hmac_sha256, salsa20, sha256};
use precursor_sim::rng::SimRng;

const CASES: usize = 64;

fn rand_array<const N: usize>(rng: &mut SimRng) -> [u8; N] {
    let mut b = [0u8; N];
    rng.fill_bytes(&mut b);
    b
}

fn rand_vec(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(max_len as u64 + 1) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn aes_roundtrip() {
    let mut rng = SimRng::seed_from(0xa001);
    for _ in 0..CASES {
        let c = Aes128::new(&Key128::from_bytes(rand_array(&mut rng)));
        let block: [u8; 16] = rand_array(&mut rng);
        assert_eq!(c.decrypt_block(c.encrypt_block(block)), block);
    }
}

#[test]
fn aes_is_a_permutation() {
    let mut rng = SimRng::seed_from(0xa002);
    for _ in 0..CASES {
        let c = Aes128::new(&Key128::from_bytes(rand_array(&mut rng)));
        let a: [u8; 16] = rand_array(&mut rng);
        let b: [u8; 16] = rand_array(&mut rng);
        assert_eq!(a == b, c.encrypt_block(a) == c.encrypt_block(b));
    }
}

#[test]
fn gcm_roundtrip() {
    let mut rng = SimRng::seed_from(0xa003);
    for _ in 0..CASES {
        let k = Key128::from_bytes(rand_array(&mut rng));
        let n = Nonce12::from_bytes(rand_array(&mut rng));
        let aad = rand_vec(&mut rng, 63);
        let pt = rand_vec(&mut rng, 511);
        let sealed = gcm::seal(&k, &n, &aad, &pt);
        assert_eq!(sealed.len(), pt.len() + gcm::TAG_LEN);
        assert_eq!(gcm::open(&k, &n, &aad, &sealed).unwrap(), pt);
    }
}

#[test]
fn gcm_detects_any_single_bit_flip() {
    let mut rng = SimRng::seed_from(0xa004);
    for _ in 0..CASES {
        let k = Key128::from_bytes(rand_array(&mut rng));
        let n = Nonce12::from_counter(7);
        let mut pt = rand_vec(&mut rng, 62);
        pt.push(rng.next_u64() as u8); // never empty
        let mut sealed = gcm::seal(&k, &n, b"", &pt);
        let pos = rng.gen_range(sealed.len() as u64) as usize;
        let bit = rng.gen_range(8) as u8;
        sealed[pos] ^= 1 << bit;
        assert!(gcm::open(&k, &n, b"", &sealed).is_err());
    }
}

#[test]
fn cmac_tamper_detection() {
    let mut rng = SimRng::seed_from(0xa005);
    for _ in 0..CASES {
        let k = Key128::from_bytes(rand_array(&mut rng));
        let mut msg = rand_vec(&mut rng, 126);
        msg.push(rng.next_u64() as u8); // never empty
        let tag = cmac::mac(&k, &msg);
        let mut tampered = msg.clone();
        let pos = rng.gen_range(tampered.len() as u64) as usize;
        let bit = rng.gen_range(8) as u8;
        tampered[pos] ^= 1 << bit;
        assert!(!cmac::verify(&k, &tampered, &tag));
        assert!(cmac::verify(&k, &msg, &tag));
    }
}

#[test]
fn salsa20_roundtrip() {
    let mut rng = SimRng::seed_from(0xa006);
    for _ in 0..CASES {
        let k = Key256::from_bytes(rand_array(&mut rng));
        let n = Nonce8::from_bytes(rand_array(&mut rng));
        let data = rand_vec(&mut rng, 1023);
        let ct = salsa20::encrypt(&k, &n, &data);
        assert_eq!(salsa20::decrypt(&k, &n, &ct), data);
    }
}

#[test]
fn salsa20_keystream_seek_consistency() {
    let mut rng = SimRng::seed_from(0xa007);
    for _ in 0..CASES {
        let k = Key256::from_bytes(rand_array(&mut rng));
        let n = Nonce8::from_bytes(rand_array(&mut rng));
        let blocks = 1 + rng.gen_range(7);
        let len = blocks as usize * 64;
        let mut whole = vec![0u8; len + 64];
        salsa20::xor_keystream(&k, &n, 0, &mut whole);
        let mut tail = vec![0u8; 64];
        salsa20::xor_keystream(&k, &n, blocks, &mut tail);
        assert_eq!(&whole[len..], &tail[..]);
    }
}

#[test]
fn sha256_streaming_equals_oneshot() {
    let mut rng = SimRng::seed_from(0xa008);
    for _ in 0..CASES {
        let data = rand_vec(&mut rng, 4095);
        let split = if data.is_empty() {
            0
        } else {
            rng.gen_range(data.len() as u64) as usize
        };
        let mut h = sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finish(), sha256::digest(&data));
    }
}

#[test]
fn hmac_distinguishes_keys() {
    let mut rng = SimRng::seed_from(0xa009);
    for _ in 0..CASES {
        let mut k1 = rand_vec(&mut rng, 62);
        k1.push(rng.next_u64() as u8);
        let mut k2 = rand_vec(&mut rng, 62);
        k2.push(rng.next_u64() as u8);
        if k1 == k2 {
            continue;
        }
        let msg = rand_vec(&mut rng, 127);
        assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }
}

#[test]
fn ct_eq_matches_plain_eq() {
    let mut rng = SimRng::seed_from(0xa00a);
    for _ in 0..CASES {
        let a = rand_vec(&mut rng, 63);
        let b = if rng.gen_bool(0.5) {
            a.clone()
        } else {
            rand_vec(&mut rng, 63)
        };
        assert_eq!(ct_eq(&a, &b), a == b);
    }
}

#[test]
fn tag_verify_matches_eq() {
    let mut rng = SimRng::seed_from(0xa00b);
    for _ in 0..CASES {
        let a: [u8; 16] = rand_array(&mut rng);
        let b: [u8; 16] = if rng.gen_bool(0.5) {
            a
        } else {
            rand_array(&mut rng)
        };
        assert_eq!(Tag::from_bytes(a).verify(&Tag::from_bytes(b)), a == b);
    }
}
