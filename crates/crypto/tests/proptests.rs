//! Property-based tests over the crypto primitives.

use proptest::prelude::*;

use precursor_crypto::keys::{Key128, Key256, Nonce12, Nonce8, Tag};
use precursor_crypto::{aes::Aes128, cmac, ct::ct_eq, gcm, hmac::hmac_sha256, salsa20, sha256};

proptest! {
    #[test]
    fn aes_roundtrip(key in prop::array::uniform16(any::<u8>()),
                     block in prop::array::uniform16(any::<u8>())) {
        let c = Aes128::new(&Key128::from_bytes(key));
        prop_assert_eq!(c.decrypt_block(c.encrypt_block(block)), block);
    }

    #[test]
    fn aes_is_a_permutation(key in prop::array::uniform16(any::<u8>()),
                            a in prop::array::uniform16(any::<u8>()),
                            b in prop::array::uniform16(any::<u8>())) {
        let c = Aes128::new(&Key128::from_bytes(key));
        prop_assert_eq!(a == b, c.encrypt_block(a) == c.encrypt_block(b));
    }

    #[test]
    fn gcm_roundtrip(key in prop::array::uniform16(any::<u8>()),
                     nonce in prop::array::uniform12(any::<u8>()),
                     aad in prop::collection::vec(any::<u8>(), 0..64),
                     pt in prop::collection::vec(any::<u8>(), 0..512)) {
        let k = Key128::from_bytes(key);
        let n = Nonce12::from_bytes(nonce);
        let sealed = gcm::seal(&k, &n, &aad, &pt);
        prop_assert_eq!(sealed.len(), pt.len() + gcm::TAG_LEN);
        prop_assert_eq!(gcm::open(&k, &n, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn gcm_detects_any_single_bit_flip(key in prop::array::uniform16(any::<u8>()),
                                       pt in prop::collection::vec(any::<u8>(), 1..64),
                                       flip_bit in 0usize..8,
                                       flip_pos_seed in any::<usize>()) {
        let k = Key128::from_bytes(key);
        let n = Nonce12::from_counter(7);
        let mut sealed = gcm::seal(&k, &n, b"", &pt);
        let pos = flip_pos_seed % sealed.len();
        sealed[pos] ^= 1 << flip_bit;
        prop_assert!(gcm::open(&k, &n, b"", &sealed).is_err());
    }

    #[test]
    fn cmac_tamper_detection(key in prop::array::uniform16(any::<u8>()),
                             msg in prop::collection::vec(any::<u8>(), 1..128),
                             flip_bit in 0usize..8,
                             flip_pos_seed in any::<usize>()) {
        let k = Key128::from_bytes(key);
        let tag = cmac::mac(&k, &msg);
        let mut tampered = msg.clone();
        let pos = flip_pos_seed % tampered.len();
        tampered[pos] ^= 1 << flip_bit;
        prop_assert!(!cmac::verify(&k, &tampered, &tag));
        prop_assert!(cmac::verify(&k, &msg, &tag));
    }

    #[test]
    fn salsa20_roundtrip(key in prop::array::uniform32(any::<u8>()),
                         nonce in prop::array::uniform8(any::<u8>()),
                         data in prop::collection::vec(any::<u8>(), 0..1024)) {
        let k = Key256::from_bytes(key);
        let n = Nonce8::from_bytes(nonce);
        let ct = salsa20::encrypt(&k, &n, &data);
        prop_assert_eq!(salsa20::decrypt(&k, &n, &ct), data);
    }

    #[test]
    fn salsa20_keystream_seek_consistency(key in prop::array::uniform32(any::<u8>()),
                                          nonce in prop::array::uniform8(any::<u8>()),
                                          blocks in 1u64..8) {
        let k = Key256::from_bytes(key);
        let n = Nonce8::from_bytes(nonce);
        let len = (blocks as usize) * 64;
        let mut whole = vec![0u8; len + 64];
        salsa20::xor_keystream(&k, &n, 0, &mut whole);
        let mut tail = vec![0u8; 64];
        salsa20::xor_keystream(&k, &n, blocks, &mut tail);
        prop_assert_eq!(&whole[len..], &tail[..]);
    }

    #[test]
    fn sha256_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..4096),
                                       split_seed in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { split_seed % data.len() };
        let mut h = sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), sha256::digest(&data));
    }

    #[test]
    fn hmac_distinguishes_keys(k1 in prop::collection::vec(any::<u8>(), 1..64),
                               k2 in prop::collection::vec(any::<u8>(), 1..64),
                               msg in prop::collection::vec(any::<u8>(), 0..128)) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    #[test]
    fn ct_eq_matches_plain_eq(a in prop::collection::vec(any::<u8>(), 0..64),
                              b in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn tag_verify_matches_eq(a in prop::array::uniform16(any::<u8>()),
                             b in prop::array::uniform16(any::<u8>())) {
        let ta = Tag::from_bytes(a);
        let tb = Tag::from_bytes(b);
        prop_assert_eq!(ta.verify(&tb), a == b);
    }
}
