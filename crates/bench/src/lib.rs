//! Shared plumbing for the figure-regeneration benches.
//!
//! Each `[[bench]]` target in this crate regenerates one table or figure of
//! the paper's evaluation (§5): it prints the same rows/series the paper
//! reports and mirrors them into `bench_results/*.csv` for plotting.
//!
//! # Scale
//!
//! By default the benches run at a reduced scale (smaller warmup, fewer
//! operations, fewer repetitions) so the whole suite finishes in minutes.
//! Set `PRECURSOR_FULL=1` for the paper's full parameters (600 k warmup
//! records, 8 repetitions, 1 M-request latency runs, 3 M-key paging run).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use precursor_sim::stats::Summary;

pub mod summary;

/// Run-scale parameters, chosen by the `PRECURSOR_FULL` env var.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Records loaded before measuring (paper: 600,000).
    pub warmup_keys: u64,
    /// Operations measured per point.
    pub measure_ops: u64,
    /// Repetitions averaged per point (paper: 8).
    pub repetitions: u64,
    /// Requests for the latency CDFs (paper: 1,000,000).
    pub cdf_requests: u64,
    /// Keys loaded for the EPC-paging variant (paper: 3,000,000).
    pub paging_keys: u64,
    /// Whether this is the full paper-scale run.
    pub full: bool,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        if std::env::var("PRECURSOR_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Scale {
                warmup_keys: 600_000,
                measure_ops: 60_000,
                repetitions: 8,
                cdf_requests: 1_000_000,
                paging_keys: 3_000_000,
                full: true,
            }
        } else {
            Scale {
                warmup_keys: 120_000,
                measure_ops: 20_000,
                repetitions: 2,
                cdf_requests: 120_000,
                paging_keys: 600_000,
                full: false,
            }
        }
    }
}

/// Prints a figure banner with the scale note.
pub fn banner(id: &str, paper_summary: &str, scale: &Scale) {
    println!("================================================================");
    println!("{id}");
    println!("paper result: {paper_summary}");
    println!(
        "scale: warmup={} ops/point={} reps={}{}",
        scale.warmup_keys,
        scale.measure_ops,
        scale.repetitions,
        if scale.full {
            " (FULL paper scale)"
        } else {
            " (reduced; PRECURSOR_FULL=1 for paper scale)"
        }
    );
    println!("================================================================");
}

/// Prints an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Writes rows as CSV under `bench_results/<name>.csv` (best effort).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let Ok(mut f) = fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(f, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(f, "{}", row.join(","));
    }
    println!("(csv: {})", path.display());
}

/// Directory the benches mirror their outputs into.
pub fn results_dir() -> PathBuf {
    // workspace root when run via `cargo bench`, else cwd
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.join("bench_results")
}

/// Averages `reps` runs of `f` and reports mean ± relative spread.
pub fn repeat(reps: u64, mut f: impl FnMut(u64) -> f64) -> (f64, f64) {
    let mut s = Summary::new();
    for rep in 0..reps {
        s.add(f(rep));
    }
    (s.mean(), s.relative_spread())
}

/// Formats ops/s as the paper's "Kops" unit.
pub fn kops(v: f64) -> String {
    format!("{:.0}", v / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_reduced() {
        // (unless the env var is set in the environment running the tests)
        if std::env::var("PRECURSOR_FULL").is_err() {
            let s = Scale::from_env();
            assert!(!s.full);
            assert!(s.warmup_keys < 600_000);
        }
    }

    #[test]
    fn repeat_averages() {
        let (mean, spread) = repeat(4, |rep| rep as f64);
        assert_eq!(mean, 1.5);
        assert!(spread > 0.0);
    }

    #[test]
    fn kops_formats() {
        assert_eq!(kops(1_149_000.0), "1149");
    }
}
