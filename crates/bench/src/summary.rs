//! Machine-readable bench trajectory: `BENCH_summary.json`.
//!
//! One seeded, fixed-scale sweep over the headline evaluation points —
//! fig4 (YCSB mixes × systems), fig5 (value sizes), fig6 (shard scaling)
//! and fig8 (per-stage latency breakdown) — rendered as a single JSON
//! document the CI trajectory diff consumes. Everything is derived from
//! sim virtual time and the per-op meter taps, so for a fixed seed the
//! document is byte-identical across runs and machines.
//!
//! The scale is deliberately small and **fixed** (it ignores
//! `PRECURSOR_FULL`): the committed baseline and a fresh run must be
//! comparable point-for-point.

use precursor_obs::JsonWriter;
use precursor_sim::meter::Stage;
use precursor_sim::CostModel;
use precursor_ycsb::driver::{RunResult, SessionParams, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

/// Seed of the committed trajectory baseline.
pub const SUMMARY_SEED: u64 = 0xB5EED;

/// Fixed trajectory scale (independent of `PRECURSOR_FULL`).
const WARMUP_KEYS: u64 = 20_000;
const MEASURE_OPS: u64 = 8_000;
const CLIENTS: usize = 8;
const VALUE_BYTES: usize = 128;

/// Throughput may regress by at most this fraction vs. the baseline.
pub const MAX_THROUGHPUT_DROP: f64 = 0.05;
/// p99 latency may grow by at most this fraction vs. the baseline.
pub const MAX_P99_GROWTH: f64 = 0.05;

/// One measured evaluation point of the trajectory.
#[derive(Debug, Clone)]
pub struct SummaryPoint {
    /// Which figure the point belongs to (`"fig4"` … `"fig8"`).
    pub fig: &'static str,
    /// Point label within the figure (workload, size, shard count).
    pub label: String,
    /// System under test.
    pub system: &'static str,
    /// Ops per second of virtual time.
    pub throughput_ops: f64,
    /// End-to-end latency percentiles (ns of virtual time).
    pub p50_ns: u64,
    /// 95th percentile latency.
    pub p95_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// Mean per-op meter charge per stage, in [`Stage::ALL`] order.
    pub stage_ns_per_op: [u64; 5],
    /// Mean per-op meter charge summed over all stages.
    pub stage_total_ns_per_op: u64,
    /// Distinct EPC pages touched by the end of the point.
    pub epc_working_set_pages: u64,
    /// EPC faults incurred by the end of the point.
    pub epc_faults: u64,
    /// Operations measured.
    pub ops: u64,
}

// Snake-case JSON keys for the stage objects (Display uses hyphens).
fn stage_key(stage: Stage) -> &'static str {
    match stage {
        Stage::ClientCpu => "client_cpu",
        Stage::ServerCritical => "server_critical",
        Stage::ServerOverhead => "server_overhead",
        Stage::Enclave => "enclave",
        Stage::Network => "network",
    }
}

fn point(fig: &'static str, label: String, system: SystemKind, r: &RunResult) -> SummaryPoint {
    let mut stage_ns_per_op = [0u64; 5];
    for (slot, stage) in stage_ns_per_op.iter_mut().zip(Stage::ALL) {
        *slot = r.stages.mean(stage).0;
    }
    SummaryPoint {
        fig,
        label,
        system: system.name(),
        throughput_ops: r.throughput_ops,
        p50_ns: r.latency.percentile(50.0).0,
        p95_ns: r.latency.percentile(95.0).0,
        p99_ns: r.latency.percentile(99.0).0,
        stage_ns_per_op,
        stage_total_ns_per_op: r.stages.mean_total().0,
        epc_working_set_pages: r.epc.working_set_pages,
        epc_faults: r.epc.epc_faults,
        ops: r.ops,
    }
}

/// Runs the fixed-scale trajectory sweep with `seed`.
pub fn collect(seed: u64) -> Vec<SummaryPoint> {
    let cost = CostModel::default();
    let mut points = Vec::new();

    // fig4: YCSB A/B/C on both systems, one warmed session per system.
    for system in [SystemKind::Precursor, SystemKind::ShieldStore] {
        let mut session = SessionParams::new(system)
            .value_size(VALUE_BYTES)
            .keys(WARMUP_KEYS, WARMUP_KEYS)
            .max_clients(CLIENTS)
            .seed(seed)
            .build(&cost);
        for (label, spec) in [
            ("A", WorkloadSpec::workload_a(VALUE_BYTES, WARMUP_KEYS)),
            ("B", WorkloadSpec::workload_b(VALUE_BYTES, WARMUP_KEYS)),
            ("C", WorkloadSpec::workload_c(VALUE_BYTES, WARMUP_KEYS)),
        ] {
            let r = session.measure(&spec, CLIENTS, MEASURE_OPS);
            points.push(point("fig4", label.to_string(), system, &r));
        }
    }

    // fig4, journaled configuration: the update-heavy mix with the sealed
    // group-commit journal attached, so the regression gate covers the
    // durability path (sealing, group flushes, reply gating) end to end.
    {
        let mut session = SessionParams::new(SystemKind::Precursor)
            .value_size(VALUE_BYTES)
            .keys(WARMUP_KEYS, WARMUP_KEYS)
            .max_clients(CLIENTS)
            .seed(seed)
            .journaled(true)
            .build(&cost);
        let spec = WorkloadSpec::workload_a(VALUE_BYTES, WARMUP_KEYS);
        let r = session.measure(&spec, CLIENTS, MEASURE_OPS);
        points.push(point(
            "fig4",
            "A+journal".to_string(),
            SystemKind::Precursor,
            &r,
        ));
    }

    // fig4, journaled + compacting configuration: same mix, but the
    // journal is compacted behind the committed watermark every 64 poll
    // sweeps, so the gate also covers snapshot-seal + prefix-truncate
    // cycles interleaved with the measured workload. Compaction runs at
    // poll boundaries, off the per-op critical path, so this point is
    // expected to match A+journal exactly — the gate pins that equality
    // (a compaction implementation that stalled the sweep would diverge).
    {
        let mut session = SessionParams::new(SystemKind::Precursor)
            .value_size(VALUE_BYTES)
            .keys(WARMUP_KEYS, WARMUP_KEYS)
            .max_clients(CLIENTS)
            .seed(seed)
            .journaled(true)
            .compacted(true)
            .build(&cost);
        let spec = WorkloadSpec::workload_a(VALUE_BYTES, WARMUP_KEYS);
        let r = session.measure(&spec, CLIENTS, MEASURE_OPS);
        assert!(
            session.metrics().counter("journal.compactions") > 0,
            "compacting bench configuration must actually compact"
        );
        points.push(point(
            "fig4",
            "A+journal+compact".to_string(),
            SystemKind::Precursor,
            &r,
        ));
    }

    // fig4, `+fast` configuration: every hot-path knob on (adaptive poll
    // budgets, batched seal/MAC passes, lazy credit write-back, reply
    // arena reuse) over four trusted polling shards at a saturating
    // client count — the headline of the server_overhead campaign. The
    // in-run asserts pin the campaign's two acceptance criteria: ≥2x the
    // fig4/A Precursor baseline end-to-end, and a mean per-op
    // ServerOverhead charge ≤ 3 µs.
    let fig4_a_baseline = points
        .iter()
        .find(|p| p.fig == "fig4" && p.label == "A" && p.system == SystemKind::Precursor.name())
        .map(|p| p.throughput_ops)
        .expect("fig4/A Precursor point measured above");
    {
        let fast_clients = 32;
        let mut session = SessionParams::new(SystemKind::Precursor)
            .value_size(VALUE_BYTES)
            .keys(WARMUP_KEYS, WARMUP_KEYS)
            .max_clients(fast_clients)
            .seed(seed)
            .shards(4)
            .fast(true)
            .build(&cost);
        for (label, spec) in [
            ("A+fast", WorkloadSpec::workload_a(VALUE_BYTES, WARMUP_KEYS)),
            ("B+fast", WorkloadSpec::workload_b(VALUE_BYTES, WARMUP_KEYS)),
            ("C+fast", WorkloadSpec::workload_c(VALUE_BYTES, WARMUP_KEYS)),
        ] {
            let r = session.measure(&spec, fast_clients, MEASURE_OPS);
            assert!(
                r.throughput_ops >= 2.0 * fig4_a_baseline,
                "{label}: {:.0} ops/s misses 2x the fig4/A baseline ({:.0})",
                r.throughput_ops,
                fig4_a_baseline
            );
            let overhead = r.stages.mean(Stage::ServerOverhead).0;
            assert!(
                overhead <= 3_000,
                "{label}: mean server_overhead {overhead} ns/op exceeds 3 µs"
            );
            points.push(point("fig4", label.to_string(), SystemKind::Precursor, &r));
        }
    }

    // failover: staged-promotion catch-up trajectory. A 3-node cluster
    // absorbs a write burst, the primary dies, and the promoted survivor
    // serves reads while background catch-up drains. Virtual time does
    // not advance during cluster pumps, so the point reports catch-up
    // progress in pump ticks: throughput = records drained per tick,
    // latency percentiles = ticks until the replica's lag hits zero.
    points.push(failover_catchup_point(seed));

    // fig5: value-size sweep on Precursor (read-only, like the paper).
    for size in [64usize, 1024] {
        let mut session = SessionParams::new(SystemKind::Precursor)
            .value_size(size)
            .keys(WARMUP_KEYS, WARMUP_KEYS)
            .max_clients(CLIENTS)
            .seed(seed)
            .build(&cost);
        let spec = WorkloadSpec::workload_c(size, WARMUP_KEYS);
        let r = session.measure(&spec, CLIENTS, MEASURE_OPS);
        points.push(point("fig5", format!("{size}B"), SystemKind::Precursor, &r));
    }

    // fig6: trusted-polling shard scaling under a saturating client count.
    for shards in [1usize, 4] {
        let mut session = SessionParams::new(SystemKind::Precursor)
            .value_size(VALUE_BYTES)
            .keys(WARMUP_KEYS, WARMUP_KEYS)
            .max_clients(16)
            .seed(seed)
            .shards(shards)
            .build(&cost);
        let spec = WorkloadSpec::workload_c(VALUE_BYTES, WARMUP_KEYS);
        let r = session.measure(&spec, 16, MEASURE_OPS);
        points.push(point(
            "fig6",
            format!("shards={shards}"),
            SystemKind::Precursor,
            &r,
        ));
    }

    // fig6, scale extension: dirty-ring sweeps, 1 KiB rings and lazy
    // driver state at fleet sizes far beyond the testbed's 100 clients.
    // One warmed 10k-client session per shard count; the 1k-client point
    // measures a subset of the same fleet. The full 1k→10k→100k decade
    // sweep with wall-clock asserts lives in the `fig6_scale_sweep`
    // bench (CI `scale-smoke`); these two decades are the points the >5%
    // trajectory gate pins.
    for shards in [4usize, 8] {
        let mut session = SessionParams::new(SystemKind::Precursor)
            .value_size(VALUE_BYTES)
            .keys(WARMUP_KEYS, WARMUP_KEYS)
            .max_clients(10_000)
            .ring_bytes(1 << 10)
            .dirty_sweep(true)
            .seed(seed)
            .shards(shards)
            .build(&cost);
        let spec = WorkloadSpec::workload_c(VALUE_BYTES, WARMUP_KEYS);
        for clients in [1_000usize, 10_000] {
            let r = session.measure(&spec, clients, MEASURE_OPS);
            assert_eq!(
                session.metrics().gauge("server.reports_dropped_total"),
                0,
                "scale points must not shed op reports"
            );
            points.push(point(
                "fig6",
                format!("clients={clients}/shards={shards}"),
                SystemKind::Precursor,
                &r,
            ));
        }
    }

    // fig8: per-stage breakdown at 128 B, read-only, both systems.
    for system in [SystemKind::Precursor, SystemKind::ShieldStore] {
        let mut session = SessionParams::new(system)
            .value_size(VALUE_BYTES)
            .keys(WARMUP_KEYS, WARMUP_KEYS)
            .max_clients(CLIENTS)
            .seed(seed)
            .build(&cost);
        let spec = WorkloadSpec::workload_c(VALUE_BYTES, WARMUP_KEYS);
        let r = session.measure(&spec, CLIENTS, MEASURE_OPS);
        points.push(point("fig8", format!("{VALUE_BYTES}B"), system, &r));
    }

    // fig9: cluster scaling under the virtual-time model — every node an
    // independent trusted poller, throughput = ops over the busiest
    // node's server-side meter charge. Multi-node points fence a live
    // key-range migration five sixths into the window; the gate pins
    // both the scaling ratio and the stale-routing overhead staying
    // under 1 %. The full 1k/10k-client decade sweep with its ≥1.7×
    // 4-node floor lives in the `fig9_cluster_sweep` bench (CI
    // `cluster-chaos`); these three points are what the >5% trajectory
    // gate watches.
    for nodes in [1usize, 2, 4] {
        points.push(fig9_cluster_point(seed, nodes, &cost));
    }

    points
}

// One fig9 trajectory point: a 64-client cluster window at `nodes` nodes
// with a migration fenced in-window on multi-node runs. Cluster pumps and
// routing happen in functional (zero-cost) steps, so the latency
// percentiles all report the mean server-side charge per op — the
// quantity the virtual-time throughput inverts — and the stage fields
// stay zero (per-node attribution lives in the fig9 CSV, not here).
fn fig9_cluster_point(seed: u64, nodes: usize, cost: &CostModel) -> SummaryPoint {
    use precursor_ycsb::cluster::{ClusterParams, ClusterSession};
    const FIG9_CLIENTS: usize = 64;
    const FIG9_KEYS: u64 = 2_000;
    const FIG9_OPS: u64 = 4_000;
    let mut session = ClusterSession::build(
        &ClusterParams {
            nodes,
            clients: FIG9_CLIENTS,
            value_size: VALUE_BYTES,
            key_count: FIG9_KEYS,
            seed,
        },
        cost,
    );
    let spec = WorkloadSpec::workload_b(VALUE_BYTES, FIG9_KEYS);
    let r = session.measure(&spec, FIG9_OPS, nodes > 1);
    if nodes > 1 {
        assert_eq!(r.migrations_fenced, 1, "fig9 migration fences in-window");
        assert!(r.redirects > 0, "fig9 fence must be observed by a redirect");
        assert!(
            r.redirect_rate < 0.01,
            "fig9 redirect rate {:.3}% breaches 1% (nodes={nodes})",
            r.redirect_rate * 100.0
        );
    }
    let mean_ns_per_op = r.duration.0 / r.ops.max(1);
    SummaryPoint {
        fig: "fig9",
        label: format!("nodes={nodes}"),
        system: SystemKind::Precursor.name(),
        throughput_ops: r.throughput_ops,
        p50_ns: mean_ns_per_op,
        p95_ns: mean_ns_per_op,
        p99_ns: mean_ns_per_op,
        stage_ns_per_op: [0; 5],
        stage_total_ns_per_op: 0,
        epc_working_set_pages: 0,
        epc_faults: 0,
        ops: r.ops,
    }
}

// The staged-promotion catch-up measurement behind the `failover/catchup`
// trajectory point: 256 committed writes, primary dies, promoted survivor
// drains its catch-up queue in 8-record pump batches while already
// serving. Pump ticks stand in for time (cluster pumps do not advance the
// virtual clock), so throughput = records/tick and the latency
// percentiles all report ticks-to-drain.
fn failover_catchup_point(seed: u64) -> SummaryPoint {
    use precursor::{Cluster, Config, GroupCommitPolicy, PrecursorClient};
    let cost = CostModel::default();
    let mut cluster = Cluster::new(Config::default(), &cost, 3, GroupCommitPolicy::immediate());
    let mut client = PrecursorClient::connect(cluster.primary_mut(), seed).expect("connect");
    for i in 0..256u16 {
        let oid = client
            .put(&i.to_le_bytes(), &[(i as u8) ^ (seed as u8); 48])
            .expect("submit");
        for _ in 0..400 {
            cluster.pump();
            client.poll_replies();
            if client.take_completed(oid).is_some() {
                break;
            }
        }
    }
    let report = cluster.fail_primary_staged(8).expect("staged promotion");
    let pending = report.recovery.catchup_pending as u64;
    let mut ticks = 0u64;
    while cluster.primary().in_catchup() && ticks < 100_000 {
        cluster.pump();
        ticks += 1;
    }
    assert!(!cluster.primary().in_catchup(), "catch-up drains");
    assert_eq!(cluster.metrics().gauge("replica.lag_records"), 0);
    let drain_ticks = ticks.max(1);
    SummaryPoint {
        fig: "failover",
        label: "catchup".to_string(),
        system: SystemKind::Precursor.name(),
        throughput_ops: pending as f64 / drain_ticks as f64,
        p50_ns: drain_ticks,
        p95_ns: drain_ticks,
        p99_ns: drain_ticks,
        stage_ns_per_op: [0; 5],
        stage_total_ns_per_op: 0,
        epc_working_set_pages: 0,
        epc_faults: 0,
        ops: pending,
    }
}

/// Renders the trajectory document. Field order is fixed; [`compare`]
/// relies on `"ops"` terminating each point.
pub fn render_json(seed: u64, points: &[SummaryPoint]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.u64(1);
    w.key("seed");
    w.u64(seed);
    w.key("scale");
    w.begin_object();
    w.key("warmup_keys");
    w.u64(WARMUP_KEYS);
    w.key("measure_ops");
    w.u64(MEASURE_OPS);
    w.key("clients");
    w.u64(CLIENTS as u64);
    w.key("value_bytes");
    w.u64(VALUE_BYTES as u64);
    w.end_object();
    w.key("points");
    w.begin_array();
    for p in points {
        w.begin_object();
        w.key("fig");
        w.string(p.fig);
        w.key("label");
        w.string(&p.label);
        w.key("system");
        w.string(p.system);
        w.key("throughput_ops");
        w.f64(p.throughput_ops);
        w.key("p50_ns");
        w.u64(p.p50_ns);
        w.key("p95_ns");
        w.u64(p.p95_ns);
        w.key("p99_ns");
        w.u64(p.p99_ns);
        w.key("stage_ns_per_op");
        w.begin_object();
        for (stage, v) in Stage::ALL.into_iter().zip(p.stage_ns_per_op) {
            w.key(stage_key(stage));
            w.u64(v);
        }
        w.key("total");
        w.u64(p.stage_total_ns_per_op);
        w.end_object();
        w.key("epc_working_set_pages");
        w.u64(p.epc_working_set_pages);
        w.key("epc_faults");
        w.u64(p.epc_faults);
        w.key("ops");
        w.u64(p.ops);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

// The subset of a point the regression gate needs.
#[derive(Debug, Clone, PartialEq)]
struct GatePoint {
    id: String,
    throughput_ops: f64,
    p99_ns: u64,
}

// Line-scans a document produced by `render_json` (whose field order is
// fixed) — the workspace has no external JSON parser by design.
fn parse_points(text: &str) -> Vec<GatePoint> {
    let mut out = Vec::new();
    let (mut fig, mut label, mut system) = (String::new(), String::new(), String::new());
    let (mut throughput, mut p99) = (0.0f64, 0u64);
    for line in text.lines() {
        let t = line.trim().trim_end_matches(',');
        let Some((key, value)) = t.split_once(": ") else {
            continue;
        };
        let unquote = |s: &str| s.trim_matches('"').to_string();
        match key {
            "\"fig\"" => fig = unquote(value),
            "\"label\"" => label = unquote(value),
            "\"system\"" => system = unquote(value),
            "\"throughput_ops\"" => throughput = value.parse().unwrap_or(0.0),
            "\"p99_ns\"" => p99 = value.parse().unwrap_or(0),
            // Last field of every point: flush.
            "\"ops\"" => out.push(GatePoint {
                id: format!("{fig}/{label}/{system}"),
                throughput_ops: throughput,
                p99_ns: p99,
            }),
            _ => {}
        }
    }
    out
}

/// Diffs `current` against `baseline` (both `render_json` documents).
/// Returns one message per regression: a >5% throughput drop, a >5% p99
/// growth, or a baseline point missing from the current run. New points
/// are allowed. An empty result means the gate passes.
pub fn compare(baseline: &str, current: &str) -> Vec<String> {
    let old = parse_points(baseline);
    let new = parse_points(current);
    let mut failures = Vec::new();
    for o in &old {
        let Some(n) = new.iter().find(|n| n.id == o.id) else {
            failures.push(format!("{}: point missing from current run", o.id));
            continue;
        };
        if n.throughput_ops < o.throughput_ops * (1.0 - MAX_THROUGHPUT_DROP) {
            failures.push(format!(
                "{}: throughput {:.0} ops/s is more than {:.0}% below baseline {:.0}",
                o.id,
                n.throughput_ops,
                MAX_THROUGHPUT_DROP * 100.0,
                o.throughput_ops
            ));
        }
        if o.p99_ns > 0 && (n.p99_ns as f64) > (o.p99_ns as f64) * (1.0 + MAX_P99_GROWTH) {
            failures.push(format!(
                "{}: p99 {} ns is more than {:.0}% above baseline {} ns",
                o.id,
                n.p99_ns,
                MAX_P99_GROWTH * 100.0,
                o.p99_ns
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(points: &[(&'static str, &str, &str, f64, u64)]) -> String {
        let points: Vec<SummaryPoint> = points
            .iter()
            .map(|&(fig, label, system, tput, p99)| SummaryPoint {
                fig,
                label: label.to_string(),
                system: system.to_string().leak(),
                throughput_ops: tput,
                p50_ns: 1,
                p95_ns: 2,
                p99_ns: p99,
                stage_ns_per_op: [1, 2, 3, 4, 5],
                stage_total_ns_per_op: 15,
                epc_working_set_pages: 10,
                epc_faults: 0,
                ops: 100,
            })
            .collect();
        render_json(7, &points)
    }

    #[test]
    fn roundtrip_parses_every_point() {
        let d = doc(&[
            ("fig4", "A", "Precursor", 100_000.0, 9_000),
            ("fig4", "A", "ShieldStore", 50_000.0, 20_000),
        ]);
        let pts = parse_points(&d);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].id, "fig4/A/Precursor");
        assert_eq!(pts[0].throughput_ops, 100_000.0);
        assert_eq!(pts[1].p99_ns, 20_000);
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let base = doc(&[("fig4", "A", "Precursor", 100_000.0, 10_000)]);
        let ok = doc(&[("fig4", "A", "Precursor", 96_000.0, 10_400)]);
        assert!(compare(&base, &ok).is_empty());
    }

    #[test]
    fn compare_flags_throughput_and_latency_regressions() {
        let base = doc(&[("fig4", "A", "Precursor", 100_000.0, 10_000)]);
        let slow = doc(&[("fig4", "A", "Precursor", 90_000.0, 11_000)]);
        let failures = compare(&base, &slow);
        assert_eq!(failures.len(), 2, "{failures:?}");
        let gone = doc(&[("fig4", "B", "Precursor", 100_000.0, 10_000)]);
        assert_eq!(compare(&base, &gone).len(), 1);
    }
}
