//! **Trajectory** — the seeded bench smoke behind the CI regression gate.
//!
//! Runs the fixed-scale evaluation sweep ([`summary::collect`]), writes
//! `bench_results/BENCH_summary.json`, and — when a baseline document is
//! available — diffs the fresh run against it, exiting non-zero on a >5%
//! throughput drop or p99 growth at any point.
//!
//! The baseline is read from `$PRECURSOR_BENCH_BASELINE` if set, else
//! from the output path itself (the committed trajectory point), **before**
//! the fresh document overwrites it.

use std::fs;

use precursor_bench::summary::{self, SUMMARY_SEED};
use precursor_bench::{print_table, results_dir};

fn main() {
    println!("================================================================");
    println!("Bench trajectory: seeded evaluation sweep -> BENCH_summary.json");
    println!("seed: {SUMMARY_SEED:#x} (fixed scale; PRECURSOR_FULL is ignored)");
    println!("================================================================");

    let out_path = results_dir().join("BENCH_summary.json");
    let baseline_path = std::env::var("PRECURSOR_BENCH_BASELINE")
        .map(Into::into)
        .unwrap_or_else(|_| out_path.clone());
    // Read before writing: the default baseline is the committed copy of
    // the very file this run regenerates.
    let baseline = fs::read_to_string(&baseline_path).ok();

    let points = summary::collect(SUMMARY_SEED);
    let json = summary::render_json(SUMMARY_SEED, &points);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.fig.to_string(),
                p.label.clone(),
                p.system.to_string(),
                format!("{:.0}", p.throughput_ops),
                format!("{}", p.p50_ns),
                format!("{}", p.p99_ns),
                format!("{}", p.stage_total_ns_per_op),
            ]
        })
        .collect();
    print_table(
        &[
            "fig",
            "label",
            "system",
            "ops/s",
            "p50(ns)",
            "p99(ns)",
            "stage total(ns/op)",
        ],
        &rows,
    );

    if fs::create_dir_all(results_dir()).is_ok() {
        fs::write(&out_path, &json).expect("write BENCH_summary.json");
        println!("(json: {})", out_path.display());
    }

    match baseline {
        None => println!("no baseline at {} — diff skipped", baseline_path.display()),
        Some(base) => {
            let failures = summary::compare(&base, &json);
            if failures.is_empty() {
                println!("trajectory gate: OK vs {}", baseline_path.display());
            } else {
                eprintln!("trajectory gate: FAILED vs {}", baseline_path.display());
                for f in &failures {
                    eprintln!("  regression: {f}");
                }
                std::process::exit(1);
            }
        }
    }
}
