//! **Figure 6** — read-only throughput while the client count grows from 10
//! to 100 (32 B values).
//!
//! Paper shape: Precursor peaks around 55 clients and then *declines* —
//! "the decline is due to the resource contention and cache misses in the
//! RNIC" (§5.2) — while ShieldStore stays flat and low.

use precursor_bench::{banner, kops, print_table, repeat, write_csv, Scale};
use precursor_sim::CostModel;
use precursor_ycsb::driver::{BenchSession, SessionParams, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

const VALUE: usize = 32;
const COUNTS: [usize; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 6: read-only throughput vs client count (32 B values)",
        "Precursor peaks ≈55 clients then declines (RNIC cache misses); ShieldStore flat-low",
        &scale,
    );
    let cost = CostModel::default();
    let spec = WorkloadSpec::workload_c(VALUE, scale.warmup_keys);

    let systems = [
        SystemKind::Precursor,
        SystemKind::PrecursorServerEnc,
        SystemKind::ShieldStore,
    ];
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut rows = Vec::new();
    for (si, system) in systems.into_iter().enumerate() {
        let mut session = BenchSession::new(
            system,
            VALUE,
            scale.warmup_keys,
            scale.warmup_keys,
            *COUNTS.last().expect("nonempty"),
            0xF16,
            &cost,
        );
        for &n in &COUNTS {
            let (mean, _) = repeat(scale.repetitions, |_| {
                session.measure(&spec, n, scale.measure_ops).throughput_ops
            });
            series[si].push(mean);
        }
    }
    for (ci, &n) in COUNTS.iter().enumerate() {
        rows.push(vec![
            format!("{n}"),
            kops(series[0][ci]),
            kops(series[1][ci]),
            kops(series[2][ci]),
        ]);
    }
    print_table(
        &[
            "clients",
            "Precursor Kops",
            "server-enc Kops",
            "ShieldStore Kops",
        ],
        &rows,
    );
    write_csv(
        "fig6_client_scaling",
        &[
            "clients",
            "precursor_kops",
            "server_enc_kops",
            "shieldstore_kops",
        ],
        &rows,
    );

    println!();
    let (peak_idx, peak) = series[0]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty");
    let at_100 = *series[0].last().expect("nonempty");
    println!(
        "Precursor peak: {} Kops at {} clients (paper: ≈55); at 100 clients {} Kops ({:+.0}% vs peak)",
        kops(*peak),
        COUNTS[peak_idx],
        kops(at_100),
        (at_100 / peak - 1.0) * 100.0
    );
    assert!(
        COUNTS[peak_idx] >= 40 && COUNTS[peak_idx] <= 70,
        "peak should fall near the paper's ~55 clients"
    );
    assert!(at_100 < *peak, "throughput must decline past the peak");

    // --- shard scaling: trusted polling threads at 16 clients (§3.8) ---
    println!();
    banner(
        "Figure 6b: multi-shard trusted polling at 16 clients (32 B values)",
        "one poller core per shard; 16 saturated clients spread over 1/2/4/8 shards",
        &scale,
    );
    const SHARD_CLIENTS: usize = 16;
    const SHARDS: [usize; 4] = [1, 2, 4, 8];
    let mut shard_tput = Vec::new();
    let mut shard_rows = Vec::new();
    for &s in &SHARDS {
        let mut session = SessionParams::new(SystemKind::Precursor)
            .value_size(VALUE)
            .keys(scale.warmup_keys, scale.warmup_keys)
            .max_clients(SHARD_CLIENTS)
            .seed(0xF16B)
            .shards(s)
            .build(&cost);
        let (mean, _) = repeat(scale.repetitions, |_| {
            session
                .measure(&spec, SHARD_CLIENTS, scale.measure_ops)
                .throughput_ops
        });
        shard_tput.push(mean);
        let speedup = mean / shard_tput[0];
        shard_rows.push(vec![format!("{s}"), kops(mean), format!("{speedup:.2}x")]);
    }
    print_table(&["shards", "Precursor Kops", "vs 1 shard"], &shard_rows);
    write_csv(
        "fig6_shard_scaling",
        &["shards", "precursor_kops", "speedup"],
        &shard_rows,
    );
    let speedup4 = shard_tput[2] / shard_tput[0];
    println!();
    println!("4-shard speedup over 1 shard at {SHARD_CLIENTS} clients: {speedup4:.2}x");
    assert!(
        speedup4 >= 1.8,
        "4 shards must lift saturated throughput ≥1.8x (got {speedup4:.2}x)"
    );
}
