//! **Figure 6** — read-only throughput while the client count grows from 10
//! to 100 (32 B values).
//!
//! Paper shape: Precursor peaks around 55 clients and then *declines* —
//! "the decline is due to the resource contention and cache misses in the
//! RNIC" (§5.2) — while ShieldStore stays flat and low.

use precursor_bench::{banner, kops, print_table, repeat, write_csv, Scale};
use precursor_sim::CostModel;
use precursor_ycsb::driver::{BenchSession, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

const VALUE: usize = 32;
const COUNTS: [usize; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 6: read-only throughput vs client count (32 B values)",
        "Precursor peaks ≈55 clients then declines (RNIC cache misses); ShieldStore flat-low",
        &scale,
    );
    let cost = CostModel::default();
    let spec = WorkloadSpec::workload_c(VALUE, scale.warmup_keys);

    let systems = [
        SystemKind::Precursor,
        SystemKind::PrecursorServerEnc,
        SystemKind::ShieldStore,
    ];
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut rows = Vec::new();
    for (si, system) in systems.into_iter().enumerate() {
        let mut session = BenchSession::new(
            system,
            VALUE,
            scale.warmup_keys,
            scale.warmup_keys,
            *COUNTS.last().expect("nonempty"),
            0xF16,
            &cost,
        );
        for &n in &COUNTS {
            let (mean, _) = repeat(scale.repetitions, |_| {
                session.measure(&spec, n, scale.measure_ops).throughput_ops
            });
            series[si].push(mean);
        }
    }
    for (ci, &n) in COUNTS.iter().enumerate() {
        rows.push(vec![
            format!("{n}"),
            kops(series[0][ci]),
            kops(series[1][ci]),
            kops(series[2][ci]),
        ]);
    }
    print_table(
        &[
            "clients",
            "Precursor Kops",
            "server-enc Kops",
            "ShieldStore Kops",
        ],
        &rows,
    );
    write_csv(
        "fig6_client_scaling",
        &[
            "clients",
            "precursor_kops",
            "server_enc_kops",
            "shieldstore_kops",
        ],
        &rows,
    );

    println!();
    let (peak_idx, peak) = series[0]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty");
    let at_100 = *series[0].last().expect("nonempty");
    println!(
        "Precursor peak: {} Kops at {} clients (paper: ≈55); at 100 clients {} Kops ({:+.0}% vs peak)",
        kops(*peak),
        COUNTS[peak_idx],
        kops(at_100),
        (at_100 / peak - 1.0) * 100.0
    );
    assert!(
        COUNTS[peak_idx] >= 40 && COUNTS[peak_idx] <= 70,
        "peak should fall near the paper's ~55 clients"
    );
    assert!(at_100 < *peak, "throughput must decline past the peak");
}
