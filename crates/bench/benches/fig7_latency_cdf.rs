//! **Figure 7** — CDFs of get() latency for a read-only workload with 32 B,
//! 512 B and 1024 B values, plus the EPC-paging variant (the paper loads
//! 3 M entries so Precursor's enclave table oversteps the EPC).
//!
//! Paper observations (§5.3): Precursor stays steady until ≈p95 (≈8 µs) with
//! p99 ≈ 21 µs, and larger values do not inflate the tail; ShieldStore has
//! a long tail ("scheduling, kernel processing and TCP buffering"); with
//! EPC paging, Precursor is still 77 % below ShieldStore until p90, but the
//! EPC impact shows from ≈p95.
//!
//! Latency runs use a light load (8 clients) so queueing does not mask the
//! unloaded path, mirroring the paper's steady sub-10 µs median alongside
//! Figure 4's saturated-throughput numbers.

use precursor_bench::{banner, print_table, write_csv, Scale};
use precursor_sim::{CostModel, Histogram, Nanos};
use precursor_ycsb::driver::{BenchSession, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

const CLIENTS: usize = 8;

fn percentiles(h: &Histogram) -> Vec<String> {
    [50.0, 90.0, 95.0, 99.0, 99.9]
        .iter()
        .map(|&p| format!("{}", h.percentile(p)))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 7: get() latency CDFs (read-only)",
        "Precursor p95≈8µs p99≈21µs, size-insensitive; ShieldStore long tail; paging hits ≥p95",
        &scale,
    );
    let cost = CostModel::default();
    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut collect = |label: &str, h: &Histogram, rows: &mut Vec<Vec<String>>| {
        let mut row = vec![label.to_string()];
        row.extend(percentiles(h));
        rows.push(row);
        for (v, f) in h.cdf() {
            csv_rows.push(vec![label.to_string(), v.0.to_string(), format!("{f:.6}")]);
        }
    };

    // Precursor at three value sizes.
    let mut precursor_p99 = Vec::new();
    for size in [32usize, 512, 1024] {
        let mut session = BenchSession::new(
            SystemKind::Precursor,
            size,
            scale.warmup_keys,
            scale.warmup_keys,
            CLIENTS,
            0xF17,
            &cost,
        );
        let spec = WorkloadSpec::workload_c(size, scale.warmup_keys);
        let r = session.measure(&spec, CLIENTS, scale.cdf_requests);
        precursor_p99.push(r.latency.percentile(99.0));
        collect(&format!("Precursor {size}B"), &r.latency, &mut rows);
    }

    // ShieldStore at the same sizes.
    let mut shield_p90 = Nanos::ZERO;
    for size in [32usize, 512, 1024] {
        let mut session = BenchSession::new(
            SystemKind::ShieldStore,
            size,
            scale.warmup_keys,
            scale.warmup_keys,
            CLIENTS,
            0xF17,
            &cost,
        );
        let spec = WorkloadSpec::workload_c(size, scale.warmup_keys);
        let r = session.measure(&spec, CLIENTS, scale.cdf_requests / 4);
        if size == 32 {
            shield_p90 = r.latency.percentile(90.0);
        }
        collect(&format!("ShieldStore {size}B"), &r.latency, &mut rows);
    }

    // EPC-paging variant: load enough keys that the enclave table oversteps
    // the EPC (paper: 3 M keys vs 93 MiB). At reduced scale the EPC is
    // shrunk proportionally so the oversubscription ratio matches.
    let mut paging_cost = cost.clone();
    if !scale.full {
        // 600 k keys × 88 B ≈ 52.8 MB table; paper ratio table/EPC ≈ 2.7
        paging_cost.epc_usable_bytes = 20 * 1024 * 1024;
    }
    let mut session = BenchSession::new(
        SystemKind::Precursor,
        32,
        scale.paging_keys,
        scale.paging_keys,
        CLIENTS,
        0xF17,
        &paging_cost,
    );
    let spec = WorkloadSpec::workload_c(32, scale.paging_keys);
    let r = session.measure(&spec, CLIENTS, scale.cdf_requests / 2);
    let paging = r.latency.clone();
    collect("Precursor 32B +EPC paging", &r.latency, &mut rows);
    println!(
        "paging run: enclave working set {} pages vs EPC {} pages, {} faults",
        r.epc.working_set_pages, r.epc.epc_capacity_pages, r.epc.epc_faults
    );

    print_table(&["series", "p50", "p90", "p95", "p99", "p99.9"], &rows);
    write_csv(
        "fig7_latency_cdf",
        &["series", "latency_ns", "cdf"],
        &csv_rows,
    );

    println!();
    let spread = precursor_p99
        .iter()
        .map(|n| n.0 as f64)
        .fold(0.0f64, f64::max)
        / precursor_p99
            .iter()
            .map(|n| n.0 as f64)
            .fold(f64::MAX, f64::min);
    println!("Precursor p99 across sizes varies {spread:.2}x (paper: 'does not increase')");
    println!(
        "paging p90 {} vs ShieldStore p90 {} ({:.0}% lower; paper: 77% lower until p90)",
        paging.percentile(90.0),
        shield_p90,
        (1.0 - paging.percentile(90.0).0 as f64 / shield_p90.0 as f64) * 100.0
    );
    assert!(
        r.epc.paging_expected(),
        "paging variant must oversubscribe the EPC"
    );
    assert!(
        paging.percentile(90.0) < shield_p90,
        "even with paging, Precursor beats ShieldStore at p90"
    );
    assert!(spread < 1.6, "Precursor tail must stay size-insensitive");
}
