//! **Figure 6 (scale)** — closed-loop client scaling from 1k to 100k
//! clients over dirty-ring sweeps (shards 4 and 8, 32 B values).
//!
//! There is no paper figure at this scale: the testbed tops out at 100
//! clients. This sweep pins the *simulator's* scaling claim instead — the
//! event-wheel scheduler (O(1) schedule/pop), lazy per-client driver
//! state, and doorbell-driven poll sweeps keep the real (wall-clock) cost
//! per simulated operation flat while the fleet grows 100×:
//!
//! * steady-state per-op wall-clock at 100k clients must stay within
//!   1.5× of the 1k-client point (same shard count) — a full-scan sweep
//!   or an eager per-client allocation pass would blow this by orders of
//!   magnitude;
//! * every 100k-client measurement must finish inside a hard in-run
//!   budget (the CI `scale-smoke` job adds its own outer timeout);
//! * per-client driver states allocated ≤ clients that actually ran an
//!   op, and no op report is shed at any scale.
//!
//! Each point runs `REPS` measurement windows on the same warmed session
//! and keeps the **minimum** per-op wall-clock: the first window at 100k
//! clients absorbs one-time noise (first-touch page faults on 200k rings,
//! frequency ramp) that is not scheduler cost, and virtualized CI hosts
//! jitter individual runs by 2-3×. The minimum still pays every per-op
//! cost — state activation, wheel churn, dirty sweeps — every window
//! re-activates its client states from scratch.
//!
//! Runs at a fixed scale (ignores `PRECURSOR_FULL`): the wall-clock
//! asserts only mean something if every run does the same work.

use std::time::{Duration, Instant};

use precursor_bench::{kops, print_table, write_csv};
use precursor_sim::CostModel;
use precursor_ycsb::driver::{SessionParams, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

const VALUE: usize = 32;
const KEYS: u64 = 20_000;
const REPS: usize = 3;
// (clients, measured ops): more ops at 100k so per-window fleet setup
// (queue seeding, state table) amortizes fairly.
const POINTS: [(usize, u64); 3] = [(1_000, 5_000), (10_000, 5_000), (100_000, 10_000)];
const SHARDS: [usize; 2] = [4, 8];
// Hard in-run budget for each individual 100k-client window.
const BUDGET_100K: Duration = Duration::from_secs(240);
// Acceptance bound: steady-state per-op wall-clock growth 1k -> 100k.
const MAX_PER_OP_GROWTH: f64 = 1.5;

fn main() {
    println!("================================================================");
    println!("Figure 6 (scale): 1k -> 10k -> 100k closed-loop clients");
    println!("dirty-ring sweeps, 1 KiB rings, lazy driver state; 32 B values");
    println!("fixed scale (PRECURSOR_FULL ignored): wall-clock asserts");
    println!("================================================================");
    let cost = CostModel::default();
    let spec = WorkloadSpec::workload_c(VALUE, KEYS);

    let mut rows = Vec::new();
    let mut growth: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &shards in &SHARDS {
        let mut per_op_1k: Option<f64> = None;
        for &(clients, ops) in &POINTS {
            let mut session = SessionParams::new(SystemKind::Precursor)
                .value_size(VALUE)
                .keys(KEYS, KEYS)
                .max_clients(clients)
                .ring_bytes(1 << 10)
                .dirty_sweep(true)
                .seed(0xF16C)
                .shards(shards)
                .build(&cost);
            let mut best = f64::MAX;
            let mut cold = 0.0f64;
            let mut throughput = 0.0f64;
            let mut active = 0u64;
            for rep in 0..REPS {
                let t = Instant::now();
                let r = session.measure(&spec, clients, ops);
                let wall = t.elapsed();
                let per_op = wall.as_secs_f64() / ops as f64;

                // Lazy-state invariant: states allocated only for clients
                // that ran an op; a window shorter than the fleet must
                // leave most of the fleet unallocated.
                assert!(
                    r.clients_active <= ops.min(clients as u64),
                    "active {} exceeds ops {} (clients {})",
                    r.clients_active,
                    ops,
                    clients
                );
                if (clients as u64) > 2 * ops {
                    assert!(
                        r.clients_active < clients as u64 / 2,
                        "short window activated {} of {} clients",
                        r.clients_active,
                        clients
                    );
                }
                assert_eq!(
                    session.metrics().gauge("server.reports_dropped_total"),
                    0,
                    "op reports shed at {clients} clients"
                );
                if clients == 100_000 {
                    assert!(
                        wall <= BUDGET_100K,
                        "100k-client window took {wall:?} (budget {BUDGET_100K:?})"
                    );
                }
                if rep == 0 {
                    cold = per_op;
                }
                best = best.min(per_op);
                throughput = r.throughput_ops;
                active = r.clients_active;
            }
            match clients {
                1_000 => per_op_1k = Some(best),
                100_000 => {
                    let base = per_op_1k.expect("1k point runs first");
                    growth.push((shards, best / base, base, best));
                }
                _ => {}
            }
            println!(
                "  shards={shards} clients={clients}: best {:.1} us/op (cold {:.1}), {} active",
                best * 1e6,
                cold * 1e6,
                active
            );
            rows.push(vec![
                format!("{shards}"),
                format!("{clients}"),
                format!("{ops}"),
                kops(throughput),
                format!("{active}"),
                format!("{:.1}", best * 1e6),
                format!("{:.1}", cold * 1e6),
            ]);
        }
    }
    print_table(
        &[
            "shards",
            "clients",
            "ops",
            "virtual Kops",
            "active",
            "best us/op",
            "cold us/op",
        ],
        &rows,
    );
    write_csv(
        "fig6_scale_sweep",
        &[
            "shards",
            "clients",
            "ops",
            "virtual_kops",
            "active_clients",
            "best_us_per_op",
            "cold_us_per_op",
        ],
        &rows,
    );
    println!();
    for &(shards, ratio, base, top) in &growth {
        assert!(
            ratio <= MAX_PER_OP_GROWTH,
            "per-op wall-clock grew {ratio:.2}x from 1k to 100k clients \
             ({:.1} us -> {:.1} us, shards={shards})",
            base * 1e6,
            top * 1e6
        );
        println!(
            "  shards={shards}: 1k -> 100k per-op growth {ratio:.2}x \
             ({:.1} us -> {:.1} us)",
            base * 1e6,
            top * 1e6
        );
    }
    println!("scale sweep OK: per-op wall-clock within {MAX_PER_OP_GROWTH}x across 100x clients");
}
