//! **Figure 1** — throughput of the server-side decrypt+encrypt pass vs. the
//! raw 40 Gbit/s RDMA bandwidth, for buffer sizes 16 B – 32 KiB with 6 and
//! 12 threads.
//!
//! Paper observation: for small packets (≤ 1 KiB) the cryptographic
//! operations deliver ≈36 % less throughput than the RDMA line rate — the
//! motivation for offloading crypto to the clients (§2.4).
//!
//! The modelled curve comes from the cost model's AES-GCM constants (the
//! same constants every other experiment charges); alongside it we measure
//! this repository's *actual* software AES-GCM as a reference point.

use std::time::Instant;

use precursor_bench::{banner, print_table, write_csv, Scale};
use precursor_crypto::{gcm, Key128, Nonce12};
use precursor_sim::CostModel;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 1: crypto throughput vs 40 Gb RDMA line rate",
        "decrypt+encrypt ≤1 KiB is ~36% below the 40 Gb line; crosses near/above it ≥32 KiB",
        &scale,
    );

    let cost = CostModel::default();
    let sizes: [usize; 12] = [
        16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
    ];
    let line_rate_mb = cost.server_nic_gbps * 1e9 / 8.0 / 1e6;

    // Modelled throughput of one decrypt+encrypt pass per buffer.
    let modelled = |threads: f64, len: usize| -> f64 {
        let cycles = 2 * cost.aes_gcm(len).0; // decrypt then re-encrypt
        let ops_per_s = threads * cost.client_freq.hz() / cycles as f64;
        ops_per_s * len as f64 / 1e6
    };

    // Real software AES-GCM of this repository (reference; our cost model,
    // not this wall-clock number, drives the other figures).
    let real = |len: usize| -> f64 {
        let key = Key128::from_bytes([7; 16]);
        let buf = vec![0xA5u8; len];
        let sealed = gcm::seal(&key, &Nonce12::from_counter(0), &[], &buf);
        let iters = (scale.measure_ops as usize * 16 / (len / 16 + 1)).clamp(50, 20_000);
        let start = Instant::now();
        for i in 0..iters {
            let n = Nonce12::from_counter(i as u64 + 1);
            let pt = gcm::open(&key, &Nonce12::from_counter(0), &[], &sealed).expect("tag ok");
            let _ = gcm::seal(&key, &n, &[], &pt);
        }
        let secs = start.elapsed().as_secs_f64();
        iters as f64 * len as f64 / secs / 1e6
    };

    let mut rows = Vec::new();
    for &len in &sizes {
        let t12 = modelled(12.0, len);
        let t6 = modelled(6.0, len);
        let deficit = (1.0 - t12 / line_rate_mb) * 100.0;
        rows.push(vec![
            format!("{len}"),
            format!("{t12:.0}"),
            format!("{t6:.0}"),
            format!("{line_rate_mb:.0}"),
            format!("{deficit:+.0}%"),
            format!("{:.0}", real(len)),
        ]);
    }
    print_table(
        &[
            "buffer(B)",
            "12thr MB/s",
            "6thr MB/s",
            "40Gb line MB/s",
            "12thr vs line",
            "sw-impl MB/s",
        ],
        &rows,
    );
    write_csv(
        "fig1_crypto_vs_rdma",
        &[
            "buffer_bytes",
            "mb_s_12thr",
            "mb_s_6thr",
            "line_mb_s",
            "deficit_pct",
            "sw_mb_s",
        ],
        &rows,
    );

    // Shape assertions mirroring the paper's claims.
    let below_1k = modelled(12.0, 1024) < line_rate_mb;
    let small_deficit = 1.0 - modelled(12.0, 256) / line_rate_mb;
    let big_ok = modelled(12.0, 32 * 1024) > line_rate_mb;
    println!();
    println!(
        "shape check: ≤1KiB below line rate: {below_1k}; 256B deficit {:.0}% (paper ~36%); \
         32KiB above line: {big_ok}",
        small_deficit * 100.0
    );
    assert!(below_1k && big_ok, "Figure 1 shape must hold");
}
