//! Criterion micro-benchmarks of the substrate data structures and
//! primitives (wall-clock, not simulated time): the Robin Hood table the
//! enclave hosts, the ring buffers on the RDMA path, the Merkle tree of the
//! baseline, and the software crypto.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use precursor_crypto::{cmac, gcm, salsa20, sha256, Key128, Key256, Nonce12, Nonce8};
use precursor_shieldstore::merkle::MerkleTree;
use precursor_storage::ring::{RingConsumer, RingProducer};
use precursor_storage::robinhood::RobinHoodMap;

fn bench_robinhood(c: &mut Criterion) {
    let mut g = c.benchmark_group("robinhood");
    g.bench_function("insert_10k", |b| {
        b.iter_batched(
            || RobinHoodMap::<u64, u64>::with_capacity(16_384),
            |mut m| {
                for i in 0..10_000u64 {
                    m.insert(i, i);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    let mut filled = RobinHoodMap::with_capacity(16_384);
    for i in 0..10_000u64 {
        filled.insert(i, i);
    }
    g.bench_function("get_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7) % 10_000;
            std::hint::black_box(filled.get(&k))
        })
    });
    g.bench_function("get_miss", |b| {
        let mut k = 10_000u64;
        b.iter(|| {
            k += 1;
            std::hint::black_box(filled.get(&k))
        })
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    for len in [64usize, 1024, 16_384] {
        let data = vec![0xA5u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(format!("aes_gcm_seal_{len}"), |b| {
            let key = Key128::from_bytes([1; 16]);
            let mut ctr = 0u64;
            b.iter(|| {
                ctr += 1;
                gcm::seal(&key, &Nonce12::from_counter(ctr), &[], &data)
            })
        });
        g.bench_function(format!("salsa20_{len}"), |b| {
            let key = Key256::from_bytes([2; 32]);
            let nonce = Nonce8::from_bytes([3; 8]);
            let mut buf = data.clone();
            b.iter(|| salsa20::xor_keystream(&key, &nonce, 0, &mut buf))
        });
        g.bench_function(format!("cmac_{len}"), |b| {
            let key = Key128::from_bytes([4; 16]);
            b.iter(|| cmac::mac(&key, &data))
        });
        g.bench_function(format!("sha256_{len}"), |b| {
            b.iter(|| sha256::digest(&data))
        });
    }
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    g.bench_function("push_pop_64B", |b| {
        let cap = 1 << 16;
        let mut buf = vec![0u8; cap];
        let mut tx = RingProducer::new(cap);
        let mut rx = RingConsumer::new(cap);
        let payload = [7u8; 64];
        b.iter(|| {
            tx.push(&mut buf, &payload).expect("fits");
            let got = rx.pop(&mut buf).expect("present");
            tx.update_credits(rx.consumed());
            got
        })
    });
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    for leaves in [1usize << 10, 1 << 16] {
        let mut tree = MerkleTree::new(leaves);
        let mut i = 0usize;
        g.bench_function(format!("update_{leaves}_leaves"), |b| {
            b.iter(|| {
                i = (i + 1) % leaves;
                tree.update(i, [i as u8; 32])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_robinhood, bench_crypto, bench_ring, bench_merkle);
criterion_main!(benches);
