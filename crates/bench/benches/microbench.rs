//! Micro-benchmarks of the substrate data structures and primitives
//! (wall-clock, not simulated time): the Robin Hood table the enclave
//! hosts, the ring buffers on the RDMA path, the Merkle tree of the
//! baseline, and the software crypto. Plain timing loops — no external
//! benchmark harness.
//!
//! ```sh
//! cargo bench --bench microbench
//! ```

use std::time::Instant;

use precursor_crypto::{cmac, gcm, salsa20, sha256, Key128, Key256, Nonce12, Nonce8};
use precursor_shieldstore::merkle::MerkleTree;
use precursor_storage::ring::{RingConsumer, RingProducer};
use precursor_storage::robinhood::RobinHoodMap;

/// Run `f` for `iters` iterations and report mean ns/iter (plus total MB/s
/// when `bytes_per_iter` is non-zero).
fn bench(name: &str, iters: u64, bytes_per_iter: u64, mut f: impl FnMut()) {
    // Short warm-up so lazily-initialised state is off the measured path.
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    if bytes_per_iter > 0 {
        let mb_s = (bytes_per_iter * iters) as f64 / elapsed.as_secs_f64() / 1e6;
        println!("{name:<28} {ns_per_iter:>12.1} ns/iter {mb_s:>10.1} MB/s");
    } else {
        println!("{name:<28} {ns_per_iter:>12.1} ns/iter");
    }
}

fn bench_robinhood() {
    println!("-- robinhood --");
    bench("insert_10k", 50, 0, || {
        let mut m = RobinHoodMap::<u64, u64>::with_capacity(16_384);
        for i in 0..10_000u64 {
            m.insert(i, i);
        }
        std::hint::black_box(&m);
    });
    let mut filled = RobinHoodMap::with_capacity(16_384);
    for i in 0..10_000u64 {
        filled.insert(i, i);
    }
    let mut k = 0u64;
    bench("get_hit", 1_000_000, 0, || {
        k = (k + 7) % 10_000;
        std::hint::black_box(filled.get(&k));
    });
    let mut k = 10_000u64;
    bench("get_miss", 1_000_000, 0, || {
        k += 1;
        std::hint::black_box(filled.get(&k));
    });
}

fn bench_crypto() {
    println!("-- crypto --");
    for len in [64usize, 1024, 16_384] {
        let data = vec![0xA5u8; len];
        let iters = (4_000_000 / len).max(100) as u64;
        let key = Key128::from_bytes([1; 16]);
        let mut ctr = 0u64;
        bench(&format!("aes_gcm_seal_{len}"), iters, len as u64, || {
            ctr += 1;
            std::hint::black_box(gcm::seal(&key, &Nonce12::from_counter(ctr), &[], &data));
        });
        let key256 = Key256::from_bytes([2; 32]);
        let nonce = Nonce8::from_bytes([3; 8]);
        let mut buf = data.clone();
        bench(&format!("salsa20_{len}"), iters, len as u64, || {
            salsa20::xor_keystream(&key256, &nonce, 0, &mut buf);
        });
        let mac_key = Key128::from_bytes([4; 16]);
        bench(&format!("cmac_{len}"), iters, len as u64, || {
            std::hint::black_box(cmac::mac(&mac_key, &data));
        });
        bench(&format!("sha256_{len}"), iters, len as u64, || {
            std::hint::black_box(sha256::digest(&data));
        });
    }
}

fn bench_ring() {
    println!("-- ring --");
    let cap = 1 << 16;
    let mut buf = vec![0u8; cap];
    let mut tx = RingProducer::new(cap);
    let mut rx = RingConsumer::new(cap);
    let payload = [7u8; 64];
    bench("push_pop_64B", 1_000_000, 64, || {
        tx.push(&mut buf, &payload).expect("fits");
        std::hint::black_box(rx.pop(&mut buf).expect("present"));
        tx.update_credits(rx.consumed());
    });
}

fn bench_merkle() {
    println!("-- merkle --");
    for leaves in [1usize << 10, 1 << 16] {
        let mut tree = MerkleTree::new(leaves);
        let mut i = 0usize;
        bench(&format!("update_{leaves}_leaves"), 100_000, 0, || {
            i = (i + 1) % leaves;
            tree.update(i, [i as u8; 32]);
        });
    }
}

fn main() {
    bench_robinhood();
    bench_crypto();
    bench_ring();
    bench_merkle();
}
