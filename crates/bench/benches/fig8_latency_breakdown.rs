//! **Figure 8** — average get() latency split into *networking*, *server
//! processing*, *enclave* and *client* stages, for value sizes
//! 16 B – 8 KiB under a read-only workload.
//!
//! The stage columns come straight from the driver's per-op meter taps
//! ([`StageBreakdown`]): client is the `ClientCpu` charge, server is the
//! `ServerCritical` charge (the request's processing proper — what the
//! paper instruments; `ServerOverhead` is occupancy that shapes
//! throughput, not per-op latency), enclave is the `Enclave` charge, and
//! networking is the residual of the end-to-end mean — transport legs and
//! queueing, which the replay layer owns and the meters deliberately
//! don't.
//!
//! Paper observations (§5.3): ShieldStore's server processing is 1.34×
//! slower than Precursor's at small values, growing to 2.15× at large ones
//! (full-payload decryption/re-encryption and copies), its in-enclave
//! latency keeps increasing with the buffer size while Precursor's remains
//! constant, and the RDMA-vs-TCP networking gap is ≈26×.

use precursor_bench::{banner, print_table, write_csv, Scale};
use precursor_sim::meter::Stage;
use precursor_sim::{CostModel, Nanos};
use precursor_ycsb::driver::{BenchSession, StageBreakdown, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

const CLIENTS: usize = 8;
const SIZES: [usize; 7] = [16, 64, 128, 512, 1024, 4096, 8192];

// Figure 8's "server" bar: critical-path processing as the meters
// charged it (overhead occupancy is a throughput effect, not latency).
fn server_ns(s: &StageBreakdown) -> Nanos {
    s.mean(Stage::ServerCritical)
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 8: average get() latency breakdown, networking vs server (read-only)",
        "ShieldStore server 1.34x (→2.15x) slower; networking ≈26x slower over TCP",
        &scale,
    );
    let cost = CostModel::default();

    let mut rows = Vec::new();
    let mut precursor_server: Vec<Nanos> = Vec::new();
    let mut shield_server: Vec<Nanos> = Vec::new();
    let mut precursor_net: Vec<Nanos> = Vec::new();
    let mut shield_net: Vec<Nanos> = Vec::new();

    for system in [SystemKind::Precursor, SystemKind::ShieldStore] {
        for &size in &SIZES {
            let keys = (scale.warmup_keys / ((size as u64 / 512).max(1))).max(10_000);
            let mut session = BenchSession::new(system, size, keys, keys, CLIENTS, 0xF18, &cost);
            let spec = WorkloadSpec::workload_c(size, keys);
            let r = session.measure(&spec, CLIENTS, scale.measure_ops);
            let total = r.latency.mean();
            let server = server_ns(&r.stages) + r.stages.mean(Stage::Enclave);
            let client = r.stages.mean(Stage::ClientCpu);
            // Residual: transport + queueing, owned by the replay layer.
            let network = total.saturating_sub(server + client);
            match system {
                SystemKind::Precursor => {
                    precursor_server.push(server);
                    precursor_net.push(network);
                }
                _ => {
                    shield_server.push(server);
                    shield_net.push(network);
                }
            }
            rows.push(vec![
                system.name().to_string(),
                format!("{size}"),
                format!("{network}"),
                format!("{}", server_ns(&r.stages)),
                format!("{}", r.stages.mean(Stage::Enclave)),
                format!("{client}"),
                format!("{total}"),
            ]);
        }
    }
    print_table(
        &[
            "system",
            "value(B)",
            "networking",
            "server",
            "enclave",
            "client",
            "total avg",
        ],
        &rows,
    );
    write_csv(
        "fig8_latency_breakdown",
        &[
            "system",
            "value_bytes",
            "network_ns",
            "server_ns",
            "enclave_ns",
            "client_ns",
            "total_ns",
        ],
        &rows,
    );

    println!();
    let ratio_small = shield_server[0].0 as f64 / precursor_server[0].0 as f64;
    let last = SIZES.len() - 1;
    let ratio_large = shield_server[last].0 as f64 / precursor_server[last].0 as f64;
    let net_ratio = shield_net[0].0 as f64 / precursor_net[0].0 as f64;
    println!(
        "server processing ratio: {ratio_small:.2}x @16B (paper 1.34x), {ratio_large:.2}x @8KiB (paper 2.15x)"
    );
    println!("networking ratio @16B: {net_ratio:.0}x (paper ≈26x)");
    let precursor_growth = precursor_server[last].0 as f64 / precursor_server[0].0 as f64;
    let shield_growth = shield_server[last].0 as f64 / shield_server[0].0 as f64;
    println!(
        "server-time growth 16B→8KiB: Precursor {precursor_growth:.2}x (paper: 'remains the same'), \
         ShieldStore {shield_growth:.2}x (paper: 'keeps increasing')"
    );
    assert!(
        ratio_large > ratio_small,
        "ShieldStore must degrade faster with size"
    );
    assert!(
        shield_growth > precursor_growth,
        "Precursor server time must stay flatter"
    );
    assert!(
        net_ratio > 5.0,
        "TCP networking must be far slower than RDMA"
    );
}
