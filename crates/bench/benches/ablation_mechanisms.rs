//! **Ablations** — isolate the contribution of each mechanism the paper's
//! §5.4 discussion credits for Precursor's performance:
//!
//! 1. *Client-side vs server-side encryption* (the headline design choice);
//! 2. *RDMA vs kernel-TCP networking* ("using the right networking
//!    technology reduces the latency of the service by 26×") — Precursor's
//!    protocol run over TCP-class per-message costs;
//! 3. *RNIC QP-cache size* (the Figure-6 decline mechanism);
//! 4. *EPC fault cost* (sensitivity of the paging tail);
//! 5. *Server thread count* (the 12-thread configuration of §5.2);
//! 6. *Small-value in-enclave storage* (the paper's §5.2 future extension);
//! 7. *Zipfian skew* (the paper evaluates uniform popularity only).

use precursor_bench::{banner, kops, print_table, write_csv, Scale};
use precursor_sim::{CostModel, Nanos};
use precursor_ycsb::driver::{BenchSession, RunConfig, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

const VALUE: usize = 32;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Ablations: per-mechanism contributions (32 B values)",
        "client crypto offload, RDMA vs TCP, RNIC cache, EPC fault cost, thread count",
        &scale,
    );
    let base_cost = CostModel::default();
    let keys = scale.warmup_keys / 2;
    let ops = scale.measure_ops / 2;
    let mut rows = Vec::new();

    let run = |system: SystemKind, clients: usize, cost: &CostModel| -> precursor_ycsb::RunResult {
        RunConfig {
            system,
            workload: WorkloadSpec::workload_a(VALUE, keys),
            clients,
            warmup_keys: keys,
            measure_ops: ops,
            seed: 0xAB1,
        }
        .run_with_cost(cost)
    };

    // 1. Encryption placement.
    let client_enc = run(SystemKind::Precursor, 50, &base_cost);
    let server_enc = run(SystemKind::PrecursorServerEnc, 50, &base_cost);
    rows.push(vec![
        "encryption: client-side (paper design)".into(),
        kops(client_enc.throughput_ops),
        format!("{}", client_enc.latency.percentile(50.0)),
    ]);
    rows.push(vec![
        "encryption: server-side".into(),
        kops(server_enc.throughput_ops),
        format!("{}", server_enc.latency.percentile(50.0)),
    ]);

    // 2. Networking: Precursor protocol but TCP-class per-message latency
    //    and per-message kernel CPU (what the paper calls "a traditional
    //    technology").
    let mut tcp_cost = base_cost.clone();
    tcp_cost.rdma_one_way = tcp_cost.tcp_msg_latency;
    tcp_cost.rdma_post_cycles = tcp_cost.tcp_msg_cycles;
    tcp_cost.rnic_cache_miss = Nanos::ZERO;
    let over_tcp = run(SystemKind::Precursor, 8, &tcp_cost);
    let over_rdma = run(SystemKind::Precursor, 8, &base_cost);
    rows.push(vec![
        "network: RDMA (8 clients)".into(),
        kops(over_rdma.throughput_ops),
        format!("{}", over_rdma.latency.percentile(50.0)),
    ]);
    rows.push(vec![
        "network: TCP-class (8 clients)".into(),
        kops(over_tcp.throughput_ops),
        format!("{}", over_tcp.latency.percentile(50.0)),
    ]);

    // 3. RNIC cache size with 100 lightly-loaded clients: misses add
    //    per-op latency (visible when the server is not saturated).
    for cache in [16usize, 64, 256] {
        let mut c = base_cost.clone();
        c.rnic_cache_qps = cache;
        c.client_think = Nanos(200_000); // keep the server unsaturated
        let r = run(SystemKind::Precursor, 100, &c);
        rows.push(vec![
            format!("rnic cache: {cache} QPs (100 idle-ish clients)"),
            kops(r.throughput_ops),
            format!("{}", r.latency.percentile(50.0)),
        ]);
    }

    // 4. EPC fault cost under paging.
    for mult in [0u64, 1, 4] {
        let mut c = base_cost.clone();
        c.epc_usable_bytes = 8 * 1024 * 1024; // force paging at this scale
        c.epc_fault_cycles = 20_000 * mult;
        let mut session = BenchSession::new(SystemKind::Precursor, VALUE, keys, keys, 8, 3, &c);
        let spec = WorkloadSpec::workload_c(VALUE, keys);
        let r = session.measure(&spec, 8, ops);
        rows.push(vec![
            format!("epc fault cost: {}x20k cycles (paging)", mult),
            kops(r.throughput_ops),
            format!("{}", r.latency.percentile(99.0)),
        ]);
    }

    // 6. Small-value in-enclave storage (§5.2 future extension): with 32 B
    //    values every put/get is served from trusted memory.
    {
        use precursor::{Config, PrecursorClient, PrecursorServer};
        for (label, config) in [
            ("small-value storage: pool (paper)", Config::default()),
            (
                "small-value storage: in-enclave (ext.)",
                Config::with_small_value_inlining(),
            ),
        ] {
            // direct unloaded measurement of the server-side cost per get
            let mut server = PrecursorServer::new(config, &base_cost);
            let mut client = PrecursorClient::connect(&mut server, 1).expect("connect");
            for i in 0..2_000u32 {
                client
                    .put_sync(&mut server, &i.to_le_bytes(), &[7u8; VALUE])
                    .expect("put");
            }
            server.take_reports();
            let mut enclave_ns = 0u64;
            let mut critical_ns = 0u64;
            for i in 0..2_000u32 {
                client.get(&i.to_le_bytes()).expect("get");
                server.poll();
                let r = server.take_reports().pop().expect("one report");
                client.poll_replies();
                client.take_all_completed();
                enclave_ns += r.meter.get(precursor_sim::meter::Stage::Enclave).0;
                critical_ns += r.meter.get(precursor_sim::meter::Stage::ServerCritical).0;
            }
            rows.push(vec![
                label.to_string(),
                "-".into(),
                format!(
                    "enclave {}ns + untrusted {}ns per get",
                    enclave_ns / 2_000,
                    critical_ns / 2_000
                ),
            ]);
        }
    }

    // 7. Zipfian skew (the paper evaluates uniform; skew concentrates table
    //    probes and, under paging, EPC hits).
    {
        use precursor_ycsb::workload::{Distribution, WorkloadSpec};
        for (label, dist) in [
            ("popularity: uniform (paper)", Distribution::Uniform),
            ("popularity: zipfian 0.99", Distribution::Zipfian),
        ] {
            let spec = WorkloadSpec {
                distribution: dist,
                ..WorkloadSpec::workload_a(VALUE, keys)
            };
            let r = RunConfig {
                system: SystemKind::Precursor,
                workload: spec,
                clients: 50,
                warmup_keys: keys,
                measure_ops: ops,
                seed: 0xAB1,
            }
            .run_with_cost(&base_cost);
            rows.push(vec![
                label.to_string(),
                kops(r.throughput_ops),
                format!("{}", r.latency.percentile(50.0)),
            ]);
        }
    }

    // 5. Server thread count.
    for threads in [6usize, 12, 24] {
        let mut c = base_cost.clone();
        c.server_threads = threads;
        let r = run(SystemKind::Precursor, 50, &c);
        rows.push(vec![
            format!("server threads: {threads}"),
            kops(r.throughput_ops),
            format!("{}", r.latency.percentile(50.0)),
        ]);
    }

    print_table(&["configuration", "Kops", "latency (p50/p99)"], &rows);
    write_csv(
        "ablation_mechanisms",
        &["configuration", "kops", "latency"],
        &rows,
    );

    println!();
    println!(
        "client-enc vs server-enc: {:+.0}% throughput (paper: up to +40%)",
        (client_enc.throughput_ops / server_enc.throughput_ops - 1.0) * 100.0
    );
    println!(
        "RDMA vs TCP-class latency: {:.1}x lower p50 (paper: 26x for the full service)",
        over_tcp.latency.percentile(50.0).0 as f64 / over_rdma.latency.percentile(50.0).0 as f64
    );
    assert!(client_enc.throughput_ops > server_enc.throughput_ops);
    assert!(over_rdma.latency.percentile(50.0) < over_tcp.latency.percentile(50.0));
}
