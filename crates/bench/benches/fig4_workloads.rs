//! **Figure 4** — throughput under varying read/update mixes: read-only
//! (YCSB C), read-mostly 95 % (YCSB B), mixed 50 % (YCSB A), update-mostly
//! 5 % read; 32 B values, 50 clients, 12 server threads.
//!
//! Paper numbers (Kops): Precursor 1,149 / 1,096 / 849 / 781; Precursor
//! server-encryption 817 / 781 / 677 / 631; ShieldStore 120 / 114 / 103 /
//! 97 — i.e. Precursor is 5.9×–8.5× ShieldStore and up to 40 % above its
//! own server-encryption variant.

use precursor_bench::{banner, kops, print_table, repeat, write_csv, Scale};
use precursor_sim::CostModel;
use precursor_ycsb::driver::{BenchSession, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

const VALUE: usize = 32;
const CLIENTS: usize = 50;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 4: throughput across read ratios (32 B, 50 clients)",
        "Precursor 1149/1096/849/781 Kops; server-enc 817/781/677/631; ShieldStore 120/114/103/97",
        &scale,
    );
    let cost = CostModel::default();
    let ratios = [
        ("100% read", 1.0),
        ("95% read", 0.95),
        ("50% read", 0.5),
        ("5% read", 0.05),
    ];
    let paper: [[f64; 4]; 3] = [
        [1_149.0, 1_096.0, 849.0, 781.0],
        [817.0, 781.0, 677.0, 631.0],
        [120.0, 114.0, 103.0, 97.0],
    ];

    let mut rows = Vec::new();
    let mut measured = [[0.0f64; 4]; 3];
    for (si, system) in [
        SystemKind::Precursor,
        SystemKind::PrecursorServerEnc,
        SystemKind::ShieldStore,
    ]
    .into_iter()
    .enumerate()
    {
        let mut session = BenchSession::new(
            system,
            VALUE,
            scale.warmup_keys,
            scale.warmup_keys,
            CLIENTS,
            0xF164,
            &cost,
        );
        for (ri, (label, ratio)) in ratios.iter().enumerate() {
            let spec = WorkloadSpec::with_read_ratio(*ratio, VALUE, scale.warmup_keys);
            let (mean, spread) = repeat(scale.repetitions, |_| {
                session
                    .measure(&spec, CLIENTS, scale.measure_ops)
                    .throughput_ops
            });
            measured[si][ri] = mean;
            rows.push(vec![
                system.name().to_string(),
                label.to_string(),
                kops(mean),
                format!("{:.0}", paper[si][ri]),
                format!("{:+.0}%", (mean / 1000.0 / paper[si][ri] - 1.0) * 100.0),
                format!("{:.1}%", spread * 100.0),
            ]);
        }
    }
    print_table(
        &[
            "system",
            "workload",
            "Kops (ours)",
            "Kops (paper)",
            "delta",
            "spread",
        ],
        &rows,
    );
    write_csv(
        "fig4_workloads",
        &[
            "system",
            "workload",
            "kops",
            "paper_kops",
            "delta_pct",
            "spread_pct",
        ],
        &rows,
    );

    println!();
    for (ri, (label, _)) in ratios.iter().enumerate() {
        let speedup = measured[0][ri] / measured[2][ri];
        let over_server_enc = (measured[0][ri] / measured[1][ri] - 1.0) * 100.0;
        println!(
            "{label:>10}: Precursor = {speedup:.1}x ShieldStore (paper 5.9–8.5x), \
             {over_server_enc:+.0}% vs server-encryption (paper up to +40%)"
        );
    }
    // The headline claim must reproduce.
    let min_speedup = (0..4)
        .map(|ri| measured[0][ri] / measured[2][ri])
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_speedup > 4.0,
        "Precursor must clearly beat ShieldStore (got {min_speedup:.1}x)"
    );
}
