//! **Table 1** — enclave (EPC) working set, sgx-perf style, after 0 keys,
//! 1 key and 100,000 32 B inserts.
//!
//! Paper numbers:
//!
//! | system      | 0 keys           | 1 key            | 100 k keys       |
//! |-------------|------------------|------------------|------------------|
//! | Precursor   | 52 p (0.2 MiB)   | 65 p (0.25 MiB)  | 2,981 p (11.6 MiB)|
//! | ShieldStore | 17,392 p (67.9 MiB)| 17,586 p (68.6 MiB)| 17,594 p (68.7 MiB)|
//!
//! Precursor's working set grows with keys but stays tiny; ShieldStore
//! statically allocates its MAC/hash structures up front.

use precursor::{Config, PrecursorClient, PrecursorServer};
use precursor_bench::{banner, print_table, write_csv, Scale};
use precursor_shieldstore::{client::ShieldClient, server::ShieldConfig, ShieldServer};
use precursor_sim::CostModel;
use precursor_ycsb::workload::{key_bytes, value_bytes};

const VALUE: usize = 32;
const CHECKPOINTS: [u64; 3] = [0, 1, 100_000];

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table 1: EPC working set vs inserted keys (32 B values)",
        "Precursor 52 / 65 / 2981 pages; ShieldStore 17392 / 17586 / 17594 pages",
        &scale,
    );
    let cost = CostModel::default();
    let paper = [[52u64, 65, 2_981], [17_392, 17_586, 17_594]];
    let mut rows = Vec::new();

    // --- Precursor ---
    {
        let mut server = PrecursorServer::new(Config::default(), &cost);
        let mut pages = Vec::new();
        pages.push(server.sgx_report().working_set_pages); // 0 keys, pre-connect
        let mut client = PrecursorClient::connect(&mut server, 1).expect("connect");
        let mut inserted = 0u64;
        for &target in &CHECKPOINTS[1..] {
            while inserted < target {
                client
                    .put(&key_bytes(inserted), &value_bytes(inserted, 0, VALUE))
                    .expect("put");
                inserted += 1;
                if inserted.is_multiple_of(512) || inserted == target {
                    server.poll();
                    client.poll_replies();
                    client.take_all_completed();
                }
            }
            pages.push(server.sgx_report().working_set_pages);
        }
        push_rows(&mut rows, "Precursor", &pages, &paper[0]);
    }

    // --- ShieldStore ---
    {
        let mut server = ShieldServer::new(ShieldConfig::default(), &cost);
        let mut pages = Vec::new();
        pages.push(server.sgx_report().working_set_pages);
        let mut client = ShieldClient::connect(&mut server, 1);
        let mut inserted = 0u64;
        for &target in &CHECKPOINTS[1..] {
            while inserted < target {
                client.put(&key_bytes(inserted), &value_bytes(inserted, 0, VALUE));
                inserted += 1;
                if inserted.is_multiple_of(256) || inserted == target {
                    server.poll();
                    client.poll_replies();
                    client.take_all_completed();
                }
            }
            pages.push(server.sgx_report().working_set_pages);
        }
        push_rows(&mut rows, "ShieldStore", &pages, &paper[1]);
    }

    print_table(
        &[
            "system",
            "keys",
            "pages (ours)",
            "MiB (ours)",
            "pages (paper)",
            "delta",
        ],
        &rows,
    );
    write_csv(
        "table1_epc_working_set",
        &["system", "keys", "pages", "mib", "paper_pages", "delta_pct"],
        &rows,
    );

    // Headline: Precursor's 100k-key working set is ~tiny vs ShieldStore's
    // static allocation, and both are ordered as in the paper.
    let precursor_100k: u64 = rows[2][2].parse().expect("pages");
    let shield_0: u64 = rows[3][2].parse().expect("pages");
    assert!(
        precursor_100k < shield_0 / 4,
        "Precursor must stay far below ShieldStore"
    );
}

fn push_rows(rows: &mut Vec<Vec<String>>, system: &str, pages: &[u64], paper: &[u64; 3]) {
    for (i, &p) in pages.iter().enumerate() {
        rows.push(vec![
            system.to_string(),
            format!("{}", CHECKPOINTS[i]),
            format!("{p}"),
            format!("{:.2}", p as f64 * 4096.0 / (1024.0 * 1024.0)),
            format!("{}", paper[i]),
            format!("{:+.0}%", (p as f64 / paper[i] as f64 - 1.0) * 100.0),
        ]);
    }
}
