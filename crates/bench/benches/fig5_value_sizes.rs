//! **Figure 5** — throughput across value sizes 16 B – 16 KiB, for a
//! read-only workload (5a) and an update-mostly workload (5b), 50 clients.
//!
//! Paper shape: Precursor stays ≈flat (≈1.2 M read-only, ≈720 K
//! update-mostly) until the NIC bandwidth bends it at large values; the
//! server-encryption variant loses ≈34 % at small and ≈49 % at large sizes;
//! ShieldStore stays low (121 K → 77 K read-only, 99 K → 22 K
//! update-mostly).

use precursor_bench::{banner, kops, print_table, repeat, write_csv, Scale};
use precursor_sim::CostModel;
use precursor_ycsb::driver::{BenchSession, SystemKind};
use precursor_ycsb::workload::WorkloadSpec;

const CLIENTS: usize = 50;
const SIZES: [usize; 7] = [16, 64, 128, 512, 1024, 4096, 16384];

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 5: throughput vs value size (read-only and update-mostly, 50 clients)",
        "Precursor ~flat then NIC-bound; server-enc -34%/-49%; ShieldStore 121→77 / 99→22 Kops",
        &scale,
    );
    let cost = CostModel::default();
    // Large values make warmup expensive; scale the keyspace down with size
    // so the bench stays tractable (chain lengths / EPC pressure barely
    // change the ≥4 KiB points).
    let keys_for = |size: usize| -> u64 {
        if size <= 1024 {
            scale.warmup_keys
        } else {
            (scale.warmup_keys / (size as u64 / 512)).max(10_000)
        }
    };

    let systems = [
        SystemKind::Precursor,
        SystemKind::PrecursorServerEnc,
        SystemKind::ShieldStore,
    ];
    let mut rows = Vec::new();
    let mut read_only: Vec<Vec<f64>> = vec![vec![0.0; SIZES.len()]; 3];
    let mut update_mostly: Vec<Vec<f64>> = vec![vec![0.0; SIZES.len()]; 3];

    for (si, system) in systems.into_iter().enumerate() {
        for (zi, &size) in SIZES.iter().enumerate() {
            let keys = keys_for(size);
            let mut session = BenchSession::new(system, size, keys, keys, CLIENTS, 0xF15, &cost);
            let ro_spec = WorkloadSpec::workload_c(size, keys);
            let um_spec = WorkloadSpec::update_mostly(size, keys);
            let ops = if size >= 4096 {
                scale.measure_ops / 2
            } else {
                scale.measure_ops
            };
            let (ro, _) = repeat(scale.repetitions, |_| {
                session.measure(&ro_spec, CLIENTS, ops).throughput_ops
            });
            let (um, _) = repeat(scale.repetitions, |_| {
                session.measure(&um_spec, CLIENTS, ops).throughput_ops
            });
            read_only[si][zi] = ro;
            update_mostly[si][zi] = um;
            rows.push(vec![
                system.name().to_string(),
                format!("{size}"),
                kops(ro),
                kops(um),
            ]);
        }
    }
    print_table(
        &["system", "value(B)", "read-only Kops", "update-mostly Kops"],
        &rows,
    );
    write_csv(
        "fig5_value_sizes",
        &[
            "system",
            "value_bytes",
            "read_only_kops",
            "update_mostly_kops",
        ],
        &rows,
    );

    println!();
    // Shape checks from the paper's text (§5.2).
    let p_small = read_only[0][0];
    let p_large = read_only[0][SIZES.len() - 1];
    let idx_4k = SIZES.iter().position(|&s| s == 4096).expect("4KiB point");
    let se_small_drop = 1.0 - read_only[1][0] / read_only[0][0];
    let se_4k_drop = 1.0 - read_only[1][idx_4k] / read_only[0][idx_4k];
    println!(
        "Precursor read-only: {} Kops @16B -> {} Kops @16KiB (NIC-bound: 40Gb/16.4KB ≈ 305 Kops)",
        kops(p_small),
        kops(p_large)
    );
    println!(
        "server-enc drop: {:.0}% @16B (paper ~34%), {:.0}% @4KiB (paper ~49%; at 16KiB both          systems are NIC-bound in the model)",
        se_small_drop * 100.0,
        se_4k_drop * 100.0
    );
    println!(
        "ShieldStore read-only: {} -> {} Kops (paper 121 -> 77)",
        kops(read_only[2][0]),
        kops(read_only[2][SIZES.len() - 1])
    );
    println!(
        "ShieldStore update-mostly: {} -> {} Kops (paper 99 -> 22)",
        kops(update_mostly[2][0]),
        kops(update_mostly[2][SIZES.len() - 1])
    );
    assert!(
        se_4k_drop > se_small_drop,
        "server-enc must degrade faster with size"
    );
    // The 16 KiB read-only point must sit at the NIC ceiling.
    let nic_bound_kops = 40.0e9 / 8.0 / 16_500.0 / 1_000.0;
    assert!(
        (p_large / 1_000.0 - nic_bound_kops).abs() / nic_bound_kops < 0.15,
        "16KiB point should be NIC-bound (got {} Kops, NIC ceiling ≈ {:.0} Kops)",
        kops(p_large),
        nic_bound_kops
    );
    assert!(
        read_only[0].iter().all(|&t| t > read_only[2][0]),
        "Precursor above ShieldStore"
    );
}
