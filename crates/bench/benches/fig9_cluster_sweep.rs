//! **Figure 9 (cluster)** — multi-node throughput scaling with a live
//! key-range migration pumped under load.
//!
//! There is no paper figure for this: Precursor's testbed is a single
//! server machine. This sweep pins the repo's cluster extension instead —
//! consistent-hash placement, client location caches, sealed `NotMine`
//! redirects, and fenced push-model migration — under the virtual-time
//! model of `precursor_ycsb::cluster`: every node is an independent
//! trusted poller, so cluster throughput is total ops over the **busiest
//! node's** accumulated server-side meter charge.
//!
//! Acceptance bounds, enforced in-run:
//!
//! * 4 nodes must deliver ≥ 1.7× the 1-node throughput at every fleet
//!   size — the placement ring's worst-case node share (32 vnodes) caps
//!   perfect 4× scaling well above that floor;
//! * on multi-node points a migration starts two thirds into the window
//!   and must fence before the window ends, with the stale-routing
//!   overhead (sealed redirects / ops) **< 1 %** after warmup;
//! * every redirect is accounted: multi-node windows must observe at
//!   least one redirect and one cache refresh, or the migration measured
//!   nothing.
//!
//! Runs at a fixed scale (ignores `PRECURSOR_FULL`): the scaling ratios
//! only mean something if every run does the same work.

use precursor_bench::{kops, print_table, write_csv};
use precursor_sim::CostModel;
use precursor_ycsb::cluster::{ClusterParams, ClusterSession};
use precursor_ycsb::workload::WorkloadSpec;

const VALUE: usize = 32;
const KEYS: u64 = 4_000;
const OPS: u64 = 6_000;
const NODES: [usize; 3] = [1, 2, 4];
const CLIENTS: [usize; 2] = [1_000, 10_000];
// Acceptance bounds.
const MIN_SPEEDUP_4N: f64 = 1.7;
const MAX_REDIRECT_RATE: f64 = 0.01;

fn main() {
    println!("================================================================");
    println!("Figure 9 (cluster): 1 -> 2 -> 4 nodes, live migration in flight");
    println!("consistent-hash ring, location caches, sealed NotMine redirects");
    println!("fixed scale (PRECURSOR_FULL ignored): scaling-ratio asserts");
    println!("================================================================");
    let cost = CostModel::default();
    let spec = WorkloadSpec::workload_b(VALUE, KEYS);

    let mut rows = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for &clients in &CLIENTS {
        let mut base_tput: Option<f64> = None;
        for &nodes in &NODES {
            let mut session = ClusterSession::build(
                &ClusterParams {
                    nodes,
                    clients,
                    value_size: VALUE,
                    key_count: KEYS,
                    seed: 0xF19C,
                },
                &cost,
            );
            let migrate = nodes > 1;
            let r = session.measure(&spec, OPS, migrate);

            assert_eq!(r.ops, OPS);
            if migrate {
                assert_eq!(
                    r.migrations_fenced, 1,
                    "migration must fence inside the window (nodes={nodes})"
                );
                assert!(
                    r.redirects > 0 && r.refreshes > 0,
                    "a fenced migration must produce redirects and refreshes \
                     (nodes={nodes}, clients={clients})"
                );
                assert!(
                    r.redirect_rate < MAX_REDIRECT_RATE,
                    "redirect rate {:.3}% breaches the {:.0}% bound \
                     (nodes={nodes}, clients={clients})",
                    r.redirect_rate * 100.0,
                    MAX_REDIRECT_RATE * 100.0
                );
            } else {
                assert_eq!(r.redirects, 0, "single node never redirects");
            }

            match nodes {
                1 => base_tput = Some(r.throughput_ops),
                4 => {
                    let base = base_tput.expect("1-node point runs first");
                    speedups.push((clients, r.throughput_ops / base));
                }
                _ => {}
            }
            let busiest = r.node_busy.iter().map(|b| b.0).max().unwrap_or_default();
            println!(
                "  nodes={nodes} clients={clients}: {} virtual Kops, \
                 {} redirects ({:.3}%), {} keys moved",
                kops(r.throughput_ops),
                r.redirects,
                r.redirect_rate * 100.0,
                r.keys_moved
            );
            rows.push(vec![
                format!("{nodes}"),
                format!("{clients}"),
                format!("{OPS}"),
                kops(r.throughput_ops),
                format!("{}", r.clients_active),
                format!("{}", r.redirects),
                format!("{:.3}", r.redirect_rate * 100.0),
                format!("{}", r.keys_moved),
                format!("{busiest}"),
            ]);
        }
    }
    print_table(
        &[
            "nodes",
            "clients",
            "ops",
            "virtual Kops",
            "active",
            "redirects",
            "redirect %",
            "keys moved",
            "busiest ns",
        ],
        &rows,
    );
    write_csv(
        "fig9_cluster_sweep",
        &[
            "nodes",
            "clients",
            "ops",
            "virtual_kops",
            "active_clients",
            "redirects",
            "redirect_pct",
            "keys_moved",
            "busiest_node_ns",
        ],
        &rows,
    );
    println!();
    for &(clients, speedup) in &speedups {
        assert!(
            speedup >= MIN_SPEEDUP_4N,
            "4-node speedup {speedup:.2}x below the {MIN_SPEEDUP_4N}x floor \
             (clients={clients})"
        );
        println!("  clients={clients}: 4-node speedup {speedup:.2}x");
    }
    println!(
        "cluster sweep OK: >= {MIN_SPEEDUP_4N}x at 4 nodes, \
         redirect rate < {:.0}% with a migration fenced in-window",
        MAX_REDIRECT_RATE * 100.0
    );
}
